"""Linear-model learning engines.

* :class:`LinearRegression` — ordinary least squares (lstsq).
* :class:`LassoRegressor` — L1-penalised least squares by cyclic
  coordinate descent on standardised features.
* :class:`BayesianRidge` — evidence-approximation ridge regression with
  iterated alpha/lambda updates (MacKay).
* :class:`LarsRegressor` — least-angle regression, returning the
  least-squares fit on the active set after a fixed number of steps.
* :class:`SGDRegressor` — plain stochastic gradient descent on the
  squared loss; like sklearn's default it is sensitive to unscaled
  features, which is exactly why the paper measures poor fidelity for it.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor
from repro.utils.rng import ensure_rng


def _add_intercept(X: np.ndarray) -> np.ndarray:
    return np.hstack([X, np.ones((X.shape[0], 1))])


class LinearRegression(Regressor):
    """Ordinary least squares."""

    def _fit(self, X, y):
        coef, *_ = np.linalg.lstsq(_add_intercept(X), y, rcond=None)
        self._coef = coef

    def _predict(self, X):
        return _add_intercept(X) @ self._coef


class LassoRegressor(Regressor):
    """L1-regularised regression via cyclic coordinate descent."""

    def __init__(self, alpha: float = 1.0, max_iter: int = 1000,
                 tol: float = 1e-6):
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol

    def _fit(self, X, y):
        n, d = X.shape
        self._x_mean = X.mean(axis=0)
        self._x_scale = X.std(axis=0)
        self._x_scale[self._x_scale == 0] = 1.0
        self._y_mean = y.mean()
        Xs = (X - self._x_mean) / self._x_scale
        yc = y - self._y_mean
        w = np.zeros(d)
        col_sq = (Xs**2).sum(axis=0)
        threshold = self.alpha * n
        residual = yc.copy()
        for _ in range(self.max_iter):
            max_step = 0.0
            for j in range(d):
                if col_sq[j] == 0:
                    continue
                rho = Xs[:, j] @ residual + col_sq[j] * w[j]
                if rho > threshold:
                    new_w = (rho - threshold) / col_sq[j]
                elif rho < -threshold:
                    new_w = (rho + threshold) / col_sq[j]
                else:
                    new_w = 0.0
                step = new_w - w[j]
                if step != 0.0:
                    residual -= step * Xs[:, j]
                    w[j] = new_w
                    max_step = max(max_step, abs(step))
            if max_step < self.tol:
                break
        self._w = w

    def _predict(self, X):
        Xs = (X - self._x_mean) / self._x_scale
        return Xs @ self._w + self._y_mean


class BayesianRidge(Regressor):
    """Bayesian ridge regression with evidence-based hyperparameters."""

    def __init__(self, max_iter: int = 300, tol: float = 1e-4):
        super().__init__()
        self.max_iter = max_iter
        self.tol = tol

    def _fit(self, X, y):
        n, d = X.shape
        self._x_mean = X.mean(axis=0)
        self._y_mean = y.mean()
        Xc = X - self._x_mean
        yc = y - self._y_mean
        xtx = Xc.T @ Xc
        xty = Xc.T @ yc
        y_var = yc.var()
        alpha = 1.0 / (y_var + 1e-12)  # noise precision
        lam = 1.0  # weight precision
        eye = np.eye(d)
        w = np.zeros(d)
        for _ in range(self.max_iter):
            sigma_inv = lam * eye + alpha * xtx
            sigma = np.linalg.inv(sigma_inv)
            w_new = alpha * sigma @ xty
            gamma = d - lam * np.trace(sigma)
            lam = max(gamma, 1e-12) / max(float(w_new @ w_new), 1e-12)
            residual = yc - Xc @ w_new
            alpha = max(n - gamma, 1e-12) / max(
                float(residual @ residual), 1e-12
            )
            if np.max(np.abs(w_new - w)) < self.tol:
                w = w_new
                break
            w = w_new
        self._w = w

    def _predict(self, X):
        return (X - self._x_mean) @ self._w + self._y_mean


class LarsRegressor(Regressor):
    """Least-angle regression (forward feature entry, LS refit)."""

    def __init__(self, n_nonzero_coefs: int = 500):
        super().__init__()
        if n_nonzero_coefs < 1:
            raise ValueError("n_nonzero_coefs must be >= 1")
        self.n_nonzero_coefs = n_nonzero_coefs

    def _fit(self, X, y):
        n, d = X.shape
        self._x_mean = X.mean(axis=0)
        self._x_scale = X.std(axis=0)
        self._x_scale[self._x_scale == 0] = 1.0
        self._y_mean = y.mean()
        Xs = (X - self._x_mean) / self._x_scale
        yc = y - self._y_mean
        active: list = []
        residual = yc.copy()
        max_steps = min(self.n_nonzero_coefs, d)
        for _ in range(max_steps):
            corr = Xs.T @ residual
            corr[active] = 0.0
            j = int(np.argmax(np.abs(corr)))
            if abs(corr[j]) < 1e-12:
                break
            active.append(j)
            sub = Xs[:, active]
            coef, *_ = np.linalg.lstsq(sub, yc, rcond=None)
            residual = yc - sub @ coef
        w = np.zeros(d)
        if active:
            w[active] = coef
        self._w = w

    def _predict(self, X):
        Xs = (X - self._x_mean) / self._x_scale
        return Xs @ self._w + self._y_mean


class SGDRegressor(Regressor):
    """Linear model trained with raw stochastic gradient descent.

    Deliberately mirrors sklearn's default behaviour (constant-ish inverse
    scaling step size, *no feature standardisation*): on the raw WMED /
    area features of this problem the iterates oscillate, matching the
    near-random fidelity the paper reports for SGD.
    """

    def __init__(self, eta0: float = 0.01, max_iter: int = 1000,
                 power_t: float = 0.25, rng=0):
        super().__init__()
        self.eta0 = eta0
        self.max_iter = max_iter
        self.power_t = power_t
        self.rng = rng

    def _fit(self, X, y):
        n, d = X.shape
        gen = ensure_rng(self.rng)
        w = np.zeros(d)
        b = 0.0
        last_stable_w = w.copy()
        last_stable_b = b
        # The divergence guard keeps the last iterate whose magnitude was
        # still reasonable: predictions then vary with the inputs instead
        # of saturating to a single clipped constant.
        stable_bound = 1e6 * (1.0 + float(np.abs(y).max()))
        t = 1
        diverged = False
        for _ in range(self.max_iter):
            for i in gen.permutation(n):
                eta = self.eta0 / t**self.power_t
                pred = float(X[i] @ w + b)
                grad = pred - y[i]
                if not np.isfinite(grad) or abs(grad) > stable_bound:
                    diverged = True
                    break
                w -= eta * grad * X[i]
                b -= eta * grad
                if abs(pred) <= stable_bound:
                    last_stable_w = w.copy()
                    last_stable_b = b
                t += 1
            if diverged:
                break
        self._w = last_stable_w
        self._b = float(last_stable_b)

    def _predict(self, X):
        return X @ self._w + self._b
