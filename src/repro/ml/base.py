"""Common regressor interface and input validation."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ModelError


def check_xy(X, y) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a training set to float64 arrays."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2:
        raise ModelError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        raise ModelError(f"y must be 1-D, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise ModelError(
            f"X has {X.shape[0]} rows but y has {y.shape[0]} values"
        )
    if X.shape[0] == 0:
        raise ModelError("cannot fit on an empty training set")
    if not np.all(np.isfinite(X)) or not np.all(np.isfinite(y)):
        raise ModelError("training data contains NaN or infinity")
    return X, y


class Regressor:
    """Base class: ``fit(X, y)`` then ``predict(X)``."""

    def __init__(self):
        self._n_features: Optional[int] = None

    def fit(self, X, y) -> "Regressor":
        X, y = check_xy(X, y)
        self._n_features = X.shape[1]
        self._fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        if self._n_features is None:
            raise ModelError(
                f"{type(self).__name__} must be fit before predicting"
            )
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise ModelError(
                f"expected shape (*, {self._n_features}), got {X.shape}"
            )
        return self._predict(X)

    # -- subclass hooks -----------------------------------------------------

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError
