"""Multi-layer perceptron regressor (ReLU hidden layers, Adam)."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.ml.base import Regressor
from repro.utils.rng import RngLike, ensure_rng


class MLPRegressor(Regressor):
    """Feed-forward network trained with Adam on squared loss.

    Matches sklearn's default shape: one hidden layer of 100 ReLU units,
    mini-batch Adam, L2 penalty ``alpha``.
    """

    def __init__(
        self,
        hidden_layer_sizes: Sequence[int] = (100,),
        alpha: float = 1e-4,
        learning_rate: float = 1e-3,
        max_iter: int = 200,
        batch_size: int = 64,
        rng: RngLike = 0,
    ):
        super().__init__()
        if any(h < 1 for h in hidden_layer_sizes):
            raise ValueError("hidden layer sizes must be positive")
        self.hidden_layer_sizes = tuple(hidden_layer_sizes)
        self.alpha = alpha
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.rng = rng

    def _init_params(self, d: int, gen) -> Tuple[list, list]:
        sizes = [d, *self.hidden_layer_sizes, 1]
        weights, biases = [], []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            weights.append(gen.uniform(-bound, bound, (fan_in, fan_out)))
            biases.append(np.zeros(fan_out))
        return weights, biases

    def _forward(self, X, weights, biases):
        activations = [X]
        h = X
        for w, b in zip(weights[:-1], biases[:-1]):
            h = np.maximum(h @ w + b, 0.0)
            activations.append(h)
        out = h @ weights[-1] + biases[-1]
        return activations, out[:, 0]

    def _fit(self, X, y):
        gen = ensure_rng(self.rng)
        n, d = X.shape
        weights, biases = self._init_params(d, gen)
        m_w = [np.zeros_like(w) for w in weights]
        v_w = [np.zeros_like(w) for w in weights]
        m_b = [np.zeros_like(b) for b in biases]
        v_b = [np.zeros_like(b) for b in biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        batch = min(self.batch_size, n)
        for _ in range(self.max_iter):
            order = gen.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                acts, pred = self._forward(X[idx], weights, biases)
                delta = (pred - y[idx])[:, None] / idx.size
                grads_w, grads_b = [], []
                for layer in range(len(weights) - 1, -1, -1):
                    grads_w.append(
                        acts[layer].T @ delta + self.alpha * weights[layer]
                    )
                    grads_b.append(delta.sum(axis=0))
                    if layer > 0:
                        delta = (delta @ weights[layer].T) * (
                            acts[layer] > 0
                        )
                grads_w.reverse()
                grads_b.reverse()
                step += 1
                for layer in range(len(weights)):
                    for param, grad, m, v in (
                        (weights[layer], grads_w[layer], m_w, v_w),
                        (biases[layer], grads_b[layer], m_b, v_b),
                    ):
                        m[layer] = beta1 * m[layer] + (1 - beta1) * grad
                        v[layer] = beta2 * v[layer] + (1 - beta2) * grad**2
                        m_hat = m[layer] / (1 - beta1**step)
                        v_hat = v[layer] / (1 - beta2**step)
                        param -= (
                            self.learning_rate
                            * m_hat
                            / (np.sqrt(v_hat) + eps)
                        )
        self._weights = weights
        self._biases = biases

    def _predict(self, X):
        _, out = self._forward(X, self._weights, self._biases)
        return out
