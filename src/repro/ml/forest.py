"""Random forest regressor (bagged CART trees).

The paper's winning engine: 100 trees (§4.1.2).  Bootstrap sampling plus
per-split feature subsampling decorrelate the trees; predictions average.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Regressor
from repro.ml.trees import DecisionTreeRegressor
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


class RandomForestRegressor(Regressor):
    """Bagging ensemble of :class:`DecisionTreeRegressor`."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features: Optional[float] = None,
        rng: RngLike = 0,
    ):
        super().__init__()
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng

    def _fit(self, X, y):
        n = X.shape[0]
        master = ensure_rng(self.rng)
        rngs = spawn_rngs(master, self.n_estimators)
        self._trees = []
        self._compiled = None
        for tree_rng in rngs:
            idx = tree_rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=tree_rng,
            )
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)

    def _compile(self):
        """Concatenate all trees into flat arrays for joint traversal.

        Prediction then descends every tree of the forest simultaneously
        with vectorised gathers — crucial for the hill-climbing loop,
        which asks for single-row predictions ~10**5 times.
        """
        feats, thrs, lefts, rights, values, roots = [], [], [], [], [], []
        offset = 0
        for tree in self._trees:
            t = tree._tree
            size = t.value.size
            roots.append(offset)
            feats.append(t.feature)
            thrs.append(t.threshold)
            child_shift = np.where(t.left >= 0, offset, 0)
            lefts.append(t.left + child_shift)
            rights.append(t.right + np.where(t.right >= 0, offset, 0))
            values.append(t.value)
            offset += size
        self._compiled = (
            np.concatenate(feats),
            np.concatenate(thrs),
            np.concatenate(lefts),
            np.concatenate(rights),
            np.concatenate(values),
            np.asarray(roots, dtype=np.int64),
        )

    def _predict(self, X):
        if self._compiled is None:
            self._compile()
        feat, thr, left, right, value, roots = self._compiled
        n = X.shape[0]
        n_trees = roots.size
        nodes = np.tile(roots, (n, 1))
        rows = np.broadcast_to(
            np.arange(n)[:, None], (n, n_trees)
        )
        active = feat[nodes] >= 0
        while np.any(active):
            cur = nodes[active]
            go_left = X[rows[active], feat[cur]] <= thr[cur]
            nodes[active] = np.where(go_left, left[cur], right[cur])
            active[active] = feat[nodes[active]] >= 0
        return value[nodes].mean(axis=1)
