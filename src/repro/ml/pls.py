"""Partial least squares regression (NIPALS, single y)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor


class PLSRegression(Regressor):
    """PLS1 with ``n_components`` latent directions."""

    def __init__(self, n_components: int = 2):
        super().__init__()
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components

    def _fit(self, X, y):
        self._x_mean = X.mean(axis=0)
        self._x_scale = X.std(axis=0)
        self._x_scale[self._x_scale == 0] = 1.0
        self._y_mean = y.mean()
        E = (X - self._x_mean) / self._x_scale
        f = y - self._y_mean
        n, d = X.shape
        k = min(self.n_components, d, n - 1) if n > 1 else 1
        W = np.zeros((d, k))
        P = np.zeros((d, k))
        q = np.zeros(k)
        for a in range(k):
            w = E.T @ f
            norm = np.linalg.norm(w)
            if norm < 1e-12:
                k = a
                break
            w /= norm
            t = E @ w
            tt = float(t @ t)
            if tt < 1e-12:
                k = a
                break
            p = E.T @ t / tt
            qa = float(f @ t) / tt
            E = E - np.outer(t, p)
            f = f - qa * t
            W[:, a] = w
            P[:, a] = p
            q[a] = qa
        if k == 0:
            self._coef = np.zeros(d)
            return
        W, P, q = W[:, :k], P[:, :k], q[:k]
        self._coef = W @ np.linalg.solve(P.T @ W, q)

    def _predict(self, X):
        Xs = (X - self._x_mean) / self._x_scale
        return Xs @ self._coef + self._y_mean
