"""Fidelity — the paper's model-selection criterion (§2.3).

The fidelity of an estimator is the fraction of configuration pairs whose
estimated values stand in the same relation (<, =, >) as their real
values.  Because the models drive *relative* decisions during Pareto
construction, fidelity matters more than absolute accuracy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

#: Pair counts above this use random pair sampling instead of all pairs.
_EXHAUSTIVE_LIMIT = 3000


def _relation(delta: np.ndarray, tol: float) -> np.ndarray:
    """Encode pairwise deltas as -1 / 0 / +1 with an equality tolerance."""
    rel = np.sign(delta)
    rel[np.abs(delta) <= tol] = 0.0
    return rel


def fidelity(
    y_true,
    y_pred,
    tol: float = 0.0,
    max_pairs: int = 2_000_000,
    rng: RngLike = 0,
) -> float:
    """Pairwise order agreement between ``y_true`` and ``y_pred`` in [0, 1].

    All ordered pairs ``i < j`` are used when the sample is small; larger
    samples are estimated from ``max_pairs`` random pairs.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError("fidelity expects two equal-length 1-D arrays")
    n = y_true.size
    if n < 2:
        raise ValueError("fidelity needs at least two samples")

    if n <= _EXHAUSTIVE_LIMIT:
        i, j = np.triu_indices(n, k=1)
    else:
        gen = ensure_rng(rng)
        i = gen.integers(0, n, size=max_pairs)
        j = gen.integers(0, n, size=max_pairs)
        keep = i != j
        i, j = i[keep], j[keep]
    rel_true = _relation(y_true[i] - y_true[j], tol)
    rel_pred = _relation(y_pred[i] - y_pred[j], tol)
    return float(np.mean(rel_true == rel_pred))


def fidelity_matrix(y_true, predictions: dict, tol: float = 0.0) -> dict:
    """Fidelity of several prediction vectors against one ground truth."""
    return {
        name: fidelity(y_true, y_pred, tol=tol)
        for name, y_pred in predictions.items()
    }
