"""Synthesis substitute standing in for Synopsys Design Compiler @ 45 nm.

Provides logic optimisation (constant propagation with gate rewriting and
net aliasing, plus dead-gate elimination) and area/delay/power reporting
over the gate netlists of :mod:`repro.netlist`.  Cross-component constant
and dead-logic sweeps are what make the accelerator-level area a non-linear
function of the component areas — the effect the paper's learned hardware
models capture and the naive additive model misses.
"""

from repro.synthesis.passes import (
    constant_propagation,
    dead_gate_elimination,
    dead_pin_rewrite,
)
from repro.synthesis.synthesizer import SynthesisReport, optimize, synthesize
from repro.synthesis.timing import critical_path_delay

__all__ = [
    "constant_propagation",
    "dead_gate_elimination",
    "dead_pin_rewrite",
    "SynthesisReport",
    "optimize",
    "synthesize",
    "critical_path_delay",
]
