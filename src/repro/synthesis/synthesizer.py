"""Top-level synthesis driver: optimise and report.

``synthesize`` plays the role the paper assigns to Synopsys Design Compiler
(45 nm target): it optimises the netlist (constant propagation + dead-gate
sweeps to fixpoint) and reports total cell area, critical-path delay and
nominal power.  Energy is reported as ``power * delay`` — the usual
energy-per-operation proxy for a combinational datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.netlist.netlist import Netlist
from repro.synthesis.passes import (
    constant_propagation,
    dead_gate_elimination,
    dead_pin_rewrite,
)
from repro.synthesis.timing import critical_path_delay

#: Process-local count of synthesis reports produced since import.  The
#: warm-rebuild benchmarks assert this stays flat across fully cached
#: builds (mirroring ``repro.core.modeling.fit_count``).
_RUNS = 0


def synthesis_run_count() -> int:
    """Synthesis reports produced by this process since import."""
    return _RUNS


@dataclass(frozen=True)
class SynthesisReport:
    """Post-synthesis quality-of-results record."""

    area: float
    delay: float
    power: float
    gate_count: int
    cells: Dict[str, int] = field(default_factory=dict)

    @property
    def energy(self) -> float:
        """Energy-per-operation proxy (uW * ns = fJ)."""
        return self.power * self.delay


def optimize(netlist: Netlist, max_rounds: int = 20) -> Netlist:
    """Run constant propagation and dead-gate elimination to fixpoint."""
    for _ in range(max_rounds):
        changes = constant_propagation(netlist)
        changes += dead_gate_elimination(netlist)
        changes += dead_pin_rewrite(netlist)
        if changes == 0:
            break
    return netlist


def report(netlist: Netlist) -> SynthesisReport:
    """Measure an (already optimised) netlist."""
    global _RUNS
    _RUNS += 1
    return SynthesisReport(
        area=netlist.area(),
        delay=critical_path_delay(netlist),
        power=netlist.power(),
        gate_count=netlist.gate_count(),
        cells=netlist.cell_histogram(),
    )


def synthesize(netlist: Netlist, in_place: bool = False) -> SynthesisReport:
    """Optimise ``netlist`` and return its report.

    By default the optimisation passes run on a structural copy, so the
    caller's netlist is left untouched — composed netlists are often
    reused (e.g. as keys of the evaluation engine's synthesis memo) and a
    silent in-place dead-gate sweep is a trap.  Pass ``in_place=True`` to
    skip the copy on hot paths where the netlist is freshly built and
    immediately discarded.
    """
    target = netlist if in_place else netlist.copy()
    optimize(target)
    return report(target)
