"""Static timing analysis: longest combinational path."""

from __future__ import annotations

from typing import Dict

from repro.netlist.netlist import CONST0, CONST1, Netlist


def critical_path_delay(netlist: Netlist) -> float:
    """Worst arrival time at any primary output (ns).

    Primary inputs and constants arrive at t=0; every cell adds its single
    pin-to-pin delay on all input-to-output arcs.
    """
    arrival: Dict[int, float] = {CONST0: 0.0, CONST1: 0.0}
    for nets in netlist.inputs.values():
        for net in nets:
            arrival[net] = 0.0
    for idx in netlist.topological_order():
        gate = netlist.gates[idx]
        at = max((arrival.get(n, 0.0) for n in gate.inputs), default=0.0)
        out_at = at + gate.cell.delay
        for net in gate.outputs:
            arrival[net] = out_at
    worst = 0.0
    for nets in netlist.outputs.values():
        for net in nets:
            worst = max(worst, arrival.get(net, 0.0))
    return worst
