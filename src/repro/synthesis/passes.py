"""Logic optimisation passes.

:func:`constant_propagation` folds constants through the netlist, rewrites
partially-constant cells to cheaper ones (FA with a zero carry becomes an
HA, a majority cell with a zero input becomes an AND...), and merges nets
that become aliases of one another.  :func:`dead_gate_elimination` removes
every gate whose outputs cannot reach a primary output.  Run to fixpoint by
:func:`repro.synthesis.synthesizer.optimize`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.netlist.cells import CELLS
from repro.netlist.netlist import CONST0, CONST1, Gate, Netlist

_CONST_VALUE = {CONST0: 0, CONST1: 1}
_CONST_NET = {0: CONST0, 1: CONST1}


class _NetState:
    """Tracks constant values and alias links discovered during the pass."""

    def __init__(self):
        self.consts: Dict[int, int] = {}
        self.alias: Dict[int, int] = {}

    def resolve(self, net: int) -> int:
        """Follow alias links (with path compression) to the canonical net."""
        seen: List[int] = []
        while net in self.alias:
            seen.append(net)
            net = self.alias[net]
        if net in self.consts:
            net = _CONST_NET[self.consts[net]]
        for n in seen:
            self.alias[n] = net
        return net

    def value(self, net: int) -> Optional[int]:
        """Constant value of ``net`` if known, else ``None``."""
        net = self.resolve(net)
        if net in _CONST_VALUE:
            return _CONST_VALUE[net]
        return self.consts.get(net)

    def set_const(self, net: int, value: int) -> None:
        self.consts[self.resolve(net)] = value

    def set_alias(self, net: int, target: int) -> None:
        net = self.resolve(net)
        target = self.resolve(target)
        if net != target:
            self.alias[net] = target


def _simplify(
    gate: Gate, state: _NetState
) -> Optional[Tuple[str, object]]:
    """Return a simplification action for ``gate`` or ``None``.

    Actions: ``("drop", [(out, "const", v) | (out, "alias", net), ...])``
    removes the gate after recording its outputs, and
    ``("rewrite", Gate)`` replaces it with a cheaper gate.
    """
    cell = gate.cell.name
    if gate.cell.is_macro:
        return None
    ins = [state.resolve(n) for n in gate.inputs]
    vals = [state.value(n) for n in ins]

    def drop_const(*pairs):
        return ("drop", [(o, "const", v) for o, v in pairs])

    def drop_alias(*pairs):
        return ("drop", [(o, "alias", n) for o, n in pairs])

    def rewrite(new_cell: str, new_inputs, outputs=None):
        return (
            "rewrite",
            Gate(
                CELLS[new_cell],
                tuple(new_inputs),
                gate.outputs if outputs is None else tuple(outputs),
            ),
        )

    out = gate.outputs

    if cell in ("BUF",):
        if vals[0] is not None:
            return drop_const((out[0], vals[0]))
        return drop_alias((out[0], ins[0]))

    if cell == "INV":
        if vals[0] is not None:
            return drop_const((out[0], 1 - vals[0]))
        return None

    if cell in ("AND2", "NAND2", "OR2", "NOR2"):
        a, b = ins
        va, vb = vals
        inverted = cell in ("NAND2", "NOR2")
        is_and = cell in ("AND2", "NAND2")
        absorbing = 0 if is_and else 1
        if va == absorbing or vb == absorbing:
            return drop_const((out[0], absorbing ^ (1 if inverted else 0)))
        if va == 1 - absorbing:
            return (
                rewrite("INV", [b]) if inverted else drop_alias((out[0], b))
            )
        if vb == 1 - absorbing:
            return (
                rewrite("INV", [a]) if inverted else drop_alias((out[0], a))
            )
        if a == b:
            return (
                rewrite("INV", [a]) if inverted else drop_alias((out[0], a))
            )
        return None

    if cell in ("XOR2", "XNOR2"):
        a, b = ins
        va, vb = vals
        odd = cell == "XOR2"
        if va is not None and vb is not None:
            return drop_const((out[0], (va ^ vb) if odd else 1 - (va ^ vb)))
        if a == b:
            return drop_const((out[0], 0 if odd else 1))
        for x, vx, other in ((a, va, b), (b, vb, a)):
            if vx == 0:
                return (
                    drop_alias((out[0], other))
                    if odd
                    else rewrite("INV", [other])
                )
            if vx == 1:
                return (
                    rewrite("INV", [other])
                    if odd
                    else drop_alias((out[0], other))
                )
        return None

    if cell == "MUX2":
        d0, d1, sel = ins
        vs = vals[2]
        if vs == 0:
            return drop_alias((out[0], d0))
        if vs == 1:
            return drop_alias((out[0], d1))
        if d0 == d1:
            return drop_alias((out[0], d0))
        if vals[0] == 0 and vals[1] == 1:
            return drop_alias((out[0], sel))
        if vals[0] == 1 and vals[1] == 0:
            return rewrite("INV", [sel])
        return None

    if cell == "MAJ3":
        known = [(i, v) for i, v in enumerate(vals) if v is not None]
        if len(known) == 3:
            return drop_const((out[0], 1 if sum(vals) >= 2 else 0))
        if known:
            i, v = known[0]
            rest = [ins[j] for j in range(3) if j != i]
            if v == 0:
                return rewrite("AND2", rest)
            return rewrite("OR2", rest)
        if ins[0] == ins[1]:
            return drop_alias((out[0], ins[0]))
        if ins[0] == ins[2]:
            return drop_alias((out[0], ins[0]))
        if ins[1] == ins[2]:
            return drop_alias((out[0], ins[1]))
        return None

    if cell == "XOR3":
        known = [(i, v) for i, v in enumerate(vals) if v is not None]
        if len(known) == 3:
            return drop_const((out[0], vals[0] ^ vals[1] ^ vals[2]))
        if known:
            i, v = known[0]
            rest = [ins[j] for j in range(3) if j != i]
            return rewrite("XOR2" if v == 0 else "XNOR2", rest)
        return None

    if cell == "HA":
        a, b = ins
        va, vb = vals
        s_out, c_out = out
        if va is not None and vb is not None:
            return drop_const((s_out, va ^ vb), (c_out, va & vb))
        for x, vx, other in ((a, va, b), (b, vb, a)):
            if vx == 0:
                return ("drop", [(s_out, "alias", other), (c_out, "const", 0)])
            if vx == 1:
                return (
                    "rewrite_multi",
                    [
                        Gate(CELLS["INV"], (other,), (s_out,)),
                    ],
                    [(c_out, "alias", other)],
                )
        return None

    if cell == "FA":
        a, b, c = ins
        known = [(i, v) for i, v in enumerate(vals) if v is not None]
        s_out, c_out = out
        if len(known) == 3:
            total = sum(vals)
            return drop_const((s_out, total & 1), (c_out, total >> 1))
        if known:
            i, v = known[0]
            rest = [ins[j] for j in range(3) if j != i]
            if v == 0:
                return rewrite("HA", rest)
            return (
                "rewrite_multi",
                [
                    Gate(CELLS["XNOR2"], tuple(rest), (s_out,)),
                    Gate(CELLS["OR2"], tuple(rest), (c_out,)),
                ],
                [],
            )
        return None

    return None


def constant_propagation(netlist: Netlist) -> int:
    """Fold constants / rewrite cells to fixpoint.  Returns change count."""
    state = _NetState()
    total_changes = 0
    changed = True
    while changed:
        changed = False
        for idx, gate in enumerate(netlist.gates):
            if gate is None:
                continue
            action = _simplify(gate, state)
            if action is None:
                resolved = tuple(state.resolve(n) for n in gate.inputs)
                if resolved != gate.inputs:
                    netlist.gates[idx] = Gate(
                        gate.cell, resolved, gate.outputs
                    )
                continue
            if action[0] == "drop":
                for net, kind, value in action[1]:
                    if kind == "const":
                        state.set_const(net, value)
                    else:
                        state.set_alias(net, value)
                netlist.gates[idx] = None
            elif action[0] == "rewrite":
                netlist.gates[idx] = action[1]
            else:  # rewrite_multi: replacement gates + drop records
                _, new_gates, records = action
                netlist.gates[idx] = new_gates[0]
                for extra in new_gates[1:]:
                    netlist.gates.append(extra)
                for net, kind, value in records:
                    if kind == "const":
                        state.set_const(net, value)
                    else:
                        state.set_alias(net, value)
            changed = True
            total_changes += 1

    # Re-point every remaining gate input and the output ports through the
    # alias/constant map.
    for idx, gate in enumerate(netlist.gates):
        if gate is None:
            continue
        resolved = tuple(state.resolve(n) for n in gate.inputs)
        if resolved != gate.inputs:
            netlist.gates[idx] = Gate(gate.cell, resolved, gate.outputs)
    for name, nets in netlist.outputs.items():
        netlist.outputs[name] = [state.resolve(n) for n in nets]
    return total_changes


def dead_gate_elimination(netlist: Netlist) -> int:
    """Remove gates that cannot reach a primary output.  Returns count."""
    live = set()
    for nets in netlist.outputs.values():
        live.update(nets)
    removed = 0
    for idx in reversed(netlist.topological_order()):
        gate = netlist.gates[idx]
        if any(net in live for net in gate.outputs):
            live.update(gate.inputs)
        else:
            netlist.gates[idx] = None
            removed += 1
    return removed


#: Rewrites for multi-output cells with one dead output pin: the cheaper
#: single-output cell computing the remaining live pin.
#: {cell: {live_pin_index: replacement_cell}}
_DEAD_PIN_REWRITES = {
    "FA": {0: "XOR3", 1: "MAJ3"},  # live sum -> XOR3, live carry -> MAJ3
    "HA": {0: "XOR2", 1: "AND2"},
}


def dead_pin_rewrite(netlist: Netlist) -> int:
    """Downsize multi-output cells whose outputs are partially unused.

    A ripple adder whose sum bits are never read still has to propagate
    its carry; a real synthesis tool strips the sum logic and keeps a
    majority (carry) chain.  This pass performs that rewrite for FA and
    HA cells, which is what lets a heavily-truncated downstream component
    shrink its upstream producers — the non-additive area effect the
    paper's learned hardware models capture (§4.1.2).  Returns the number
    of rewritten gates.
    """
    live = set()
    for nets in netlist.outputs.values():
        live.update(nets)
    order = netlist.topological_order()
    for idx in reversed(order):
        gate = netlist.gates[idx]
        if any(net in live for net in gate.outputs):
            live.update(gate.inputs)

    rewritten = 0
    for idx in order:
        gate = netlist.gates[idx]
        if gate is None or gate.cell.name not in _DEAD_PIN_REWRITES:
            continue
        live_pins = [
            pin for pin, net in enumerate(gate.outputs) if net in live
        ]
        if len(live_pins) != 1:
            continue
        replacement = _DEAD_PIN_REWRITES[gate.cell.name].get(live_pins[0])
        if replacement is None:
            continue
        netlist.gates[idx] = Gate(
            CELLS[replacement],
            gate.inputs,
            (gate.outputs[live_pins[0]],),
        )
        rewritten += 1
    return rewritten
