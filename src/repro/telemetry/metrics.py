"""Process-wide metrics: counters, gauges, bounded-reservoir histograms.

One :class:`MetricsRegistry` per process (``get_metrics()``), guarded by
a single lock so every operation is thread-safe. Metric names are flat
dotted strings (``engine.evaluations``, ``serve.job_seconds.memory``).

Cross-process aggregation: ``ParallelRuntime`` workers accumulate into
their *own* process registry and export an :func:`export_delta` with
each task result; the parent :func:`merge`\\ s those deltas back, so
``snapshot()`` in the parent reflects work done everywhere.

Histograms keep a bounded reservoir (algorithm R, deterministic seed —
no wall-clock entropy) so percentiles stay O(capacity) in memory no
matter how many observations arrive.

``REPRO_TELEMETRY=off`` swaps in a no-op registry: every instrumentation
site degrades to one attribute lookup plus an empty method call.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.utils.validation import check_env_choice

__all__ = [
    "TELEMETRY_ENV",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "get_metrics",
    "reset_metrics",
    "render_prometheus",
]

#: Kill switch — ``off``/``0``/``false`` disables the whole registry.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Bounded reservoir size per histogram; percentiles are exact until
#: a histogram sees more observations than this.
RESERVOIR_CAPACITY = 1024

#: Percentiles exported by ``snapshot()`` and the Prometheus renderer.
QUANTILES = (0.5, 0.95, 0.99)


class _Histogram:
    """Count/sum/min/max plus a bounded algorithm-R reservoir."""

    __slots__ = ("count", "total", "min", "max", "samples", "_rng")

    def __init__(self, seed: int = 0) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []
        # Deterministic per-histogram stream: reservoir contents (and
        # hence reported percentiles) are reproducible run to run.
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < RESERVOIR_CAPACITY:
            self.samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_CAPACITY:
                self.samples[slot] = value

    def merge(self, other: dict) -> None:
        """Absorb an exported delta (see :meth:`export`)."""
        self.count += other["count"]
        self.total += other["sum"]
        for bound, better in (("min", min), ("max", max)):
            value = other[bound]
            if value is None:
                continue
            mine = getattr(self, bound)
            setattr(
                self, bound,
                value if mine is None else better(mine, value),
            )
        for value in other["samples"]:
            if len(self.samples) < RESERVOIR_CAPACITY:
                self.samples.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < RESERVOIR_CAPACITY:
                    self.samples[slot] = value

    def percentile(self, q: float) -> Optional[float]:
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = max(0, int(round(q * len(ordered))) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    def summary(self) -> dict:
        doc = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }
        for q in QUANTILES:
            doc[f"p{int(q * 100)}"] = self.percentile(q)
        return doc

    def export(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self.samples),
        }


class MetricsRegistry:
    """Thread-safe counters, gauges, and histograms under one lock."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}

    # -- writes ------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = _Histogram(seed=len(self._histograms))
                self._histograms[name] = histogram
            histogram.observe(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Observe the elapsed seconds of the wrapped block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- reads -------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def mark(self) -> dict:
        """A counter checkpoint for later ``snapshot(since=...)``."""
        with self._lock:
            return dict(self._counters)

    def snapshot(self, since: Optional[dict] = None) -> dict:
        """Everything, JSON-ready; ``since`` diffs the counters."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                name: h.summary()
                for name, h in self._histograms.items()
            }
        if since is not None:
            counters = {
                name: value - since.get(name, 0)
                for name, value in counters.items()
                if value - since.get(name, 0)
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    # -- cross-process aggregation -----------------------------------

    def export_delta(self) -> Optional[dict]:
        """Atomically drain everything accumulated since the last call.

        Returns ``None`` when nothing happened — the common case on
        task paths that never touch a metric.
        """
        with self._lock:
            if not (self._counters or self._histograms
                    or self._gauges):
                return None
            delta = {
                "counters": self._counters,
                "gauges": self._gauges,
                "histograms": {
                    name: h.export()
                    for name, h in self._histograms.items()
                },
            }
            self._counters = {}
            self._gauges = {}
            self._histograms = {}
        return delta

    def merge(self, delta: Optional[dict]) -> None:
        """Absorb a delta exported by another process (or thread)."""
        if not delta:
            return
        with self._lock:
            for name, value in delta.get("counters", {}).items():
                self._counters[name] = (
                    self._counters.get(name, 0) + value
                )
            for name, value in delta.get("gauges", {}).items():
                self._gauges[name] = value
            for name, exported in delta.get(
                "histograms", {}
            ).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = _Histogram(seed=len(self._histograms))
                    self._histograms[name] = histogram
                histogram.merge(exported)

    def reset(self) -> None:
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}


class NullMetricsRegistry(MetricsRegistry):
    """No-op stand-in when ``REPRO_TELEMETRY=off``."""

    enabled = False

    def inc(self, name, value=1):
        pass

    def set_gauge(self, name, value):
        pass

    def observe(self, name, value):
        pass

    @contextmanager
    def timer(self, name):
        yield

    def export_delta(self):
        return None

    def merge(self, delta):
        pass


def _telemetry_enabled() -> bool:
    raw = os.environ.get(TELEMETRY_ENV)
    if raw is None:
        return True
    choice = check_env_choice(
        raw, TELEMETRY_ENV,
        ("on", "off", "1", "0", "true", "false"),
    )
    return choice in ("on", "1", "true")


_REGISTRY: Optional[MetricsRegistry] = None
_REGISTRY_PID: Optional[int] = None
_REGISTRY_LOCK = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (rebuilt after a fork)."""
    global _REGISTRY, _REGISTRY_PID
    registry = _REGISTRY
    if registry is not None and _REGISTRY_PID == os.getpid():
        return registry
    with _REGISTRY_LOCK:
        if _REGISTRY is None or _REGISTRY_PID != os.getpid():
            _REGISTRY = (
                MetricsRegistry()
                if _telemetry_enabled()
                else NullMetricsRegistry()
            )
            _REGISTRY_PID = os.getpid()
        return _REGISTRY


def reset_metrics() -> None:
    """Drop the process registry (tests; re-reads the env knob)."""
    global _REGISTRY, _REGISTRY_PID
    with _REGISTRY_LOCK:
        _REGISTRY = None
        _REGISTRY_PID = None


# -- Prometheus text exposition --------------------------------------

def _prom_name(name: str) -> str:
    return "repro_" + "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )


def render_prometheus(snapshot: dict) -> str:
    """Render a ``snapshot()`` dict as Prometheus text exposition."""
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {snapshot['gauges'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][name]
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} summary")
        for q in QUANTILES:
            value = summary.get(f"p{int(q * 100)}")
            if value is not None:
                lines.append(
                    f'{metric}{{quantile="{q}"}} {value}'
                )
        lines.append(f"{metric}_sum {summary['sum']}")
        lines.append(f"{metric}_count {summary['count']}")
    return "\n".join(lines) + "\n"
