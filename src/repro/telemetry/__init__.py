"""Shared observability layer: metrics, span tracing, structured logs.

Three independent pieces with one design rule — *disabled paths cost
nothing measurable*:

- :mod:`repro.telemetry.metrics` — process-wide counters/gauges/
  histograms with cross-process delta aggregation.
- :mod:`repro.telemetry.tracing` — Chrome trace-event spans that
  stitch across ``ParallelRuntime`` workers.
- :mod:`repro.telemetry.logs` — JSON-lines/text logging to stderr.

:func:`collect_worker_delta` / :func:`absorb_worker_delta` are the
runtime's piggyback hooks: a worker drains its metrics and trace
events into one picklable dict per task; the parent folds it back in.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.logs import (
    LOG_FORMAT_ENV,
    LOG_LEVEL_ENV,
    get_logger,
    setup_logging,
)
from repro.telemetry.metrics import (
    TELEMETRY_ENV,
    MetricsRegistry,
    get_metrics,
    render_prometheus,
    reset_metrics,
)
from repro.telemetry.tracing import (
    TRACE_ENV,
    Span,
    Tracer,
    complete_event,
    current_tracer,
    drain_worker_events,
    install_tracer,
    maybe_span,
    uninstall_tracer,
    worker_tracer,
)

__all__ = [
    "TELEMETRY_ENV",
    "TRACE_ENV",
    "LOG_LEVEL_ENV",
    "LOG_FORMAT_ENV",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "get_metrics",
    "reset_metrics",
    "render_prometheus",
    "get_logger",
    "setup_logging",
    "install_tracer",
    "uninstall_tracer",
    "current_tracer",
    "maybe_span",
    "complete_event",
    "worker_tracer",
    "drain_worker_events",
    "collect_worker_delta",
    "absorb_worker_delta",
]


def collect_worker_delta() -> Optional[dict]:
    """Everything this process accumulated, drained for the piggyback.

    Returns ``None`` when neither metrics nor trace events exist —
    the overwhelmingly common case with telemetry off, so the parent
    can skip the merge entirely.
    """
    metrics_delta = get_metrics().export_delta()
    spans = drain_worker_events()
    if metrics_delta is None and not spans:
        return None
    return {"metrics": metrics_delta, "spans": spans}


def absorb_worker_delta(delta: Optional[dict]) -> None:
    """Fold a worker's piggybacked delta into this process."""
    if not delta:
        return
    get_metrics().merge(delta.get("metrics"))
    spans = delta.get("spans")
    if spans:
        tracer = current_tracer()
        if tracer is not None:
            tracer.extend(spans)
