"""Structured logging for the package: JSON-lines or text, to stderr.

All ``repro`` loggers hang off one root logger configured lazily by
:func:`get_logger`. Handlers always write to **stderr** so ``--json``
stdout purity holds no matter how chatty a run is.

Knobs (validated through the ``check_env_*`` helpers; a set-but-bogus
value is a configuration error, never a silent fallback):

- ``REPRO_LOG_LEVEL`` — ``debug|info|warning|error|critical``
  (default ``info``).
- ``REPRO_LOG_FORMAT`` — ``text`` (default) or ``json`` for one JSON
  object per line.

Extra structured fields ride on the standard ``extra=`` mechanism:
``log.info("built", extra={"data": {"components": 8}})`` — the JSON
formatter splices ``data`` into the emitted object, the text formatter
appends it as ``key=value`` pairs.
"""

from __future__ import annotations

import datetime
import json
import logging
import os
import sys
from typing import Optional

from repro.utils.validation import check_env_choice

__all__ = [
    "LOG_LEVEL_ENV",
    "LOG_FORMAT_ENV",
    "JsonLinesFormatter",
    "TextFormatter",
    "setup_logging",
    "get_logger",
]

LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"
LOG_FORMAT_ENV = "REPRO_LOG_FORMAT"

_LEVELS = ("debug", "info", "warning", "error", "critical")
_FORMATS = ("text", "json")

#: Name of the package root logger every ``get_logger`` child joins.
ROOT = "repro"


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message, data."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": datetime.datetime.fromtimestamp(
                record.created, tz=datetime.timezone.utc
            ).isoformat(timespec="milliseconds"),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        data = getattr(record, "data", None)
        if isinstance(data, dict):
            doc.update(data)
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, default=str)


class TextFormatter(logging.Formatter):
    """``LEVEL logger: message key=value ...`` — greppable one-liners."""

    def format(self, record: logging.LogRecord) -> str:
        line = (
            f"{record.levelname} {record.name}: "
            f"{record.getMessage()}"
        )
        data = getattr(record, "data", None)
        if isinstance(data, dict):
            line += "".join(
                f" {key}={value}" for key, value in data.items()
            )
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


class _LazyStderrHandler(logging.StreamHandler):
    """A StreamHandler that resolves ``sys.stderr`` at emit time.

    Binding the stream per record (instead of at handler construction)
    keeps log output on whatever ``sys.stderr`` currently is — test
    harnesses and CLIs routinely swap it after logging is configured.
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr


def _env_level() -> int:
    raw = os.environ.get(LOG_LEVEL_ENV)
    if raw is None:
        return logging.INFO
    choice = check_env_choice(raw, LOG_LEVEL_ENV, _LEVELS)
    return getattr(logging, choice.upper())


def _env_format() -> str:
    raw = os.environ.get(LOG_FORMAT_ENV)
    if raw is None:
        return "text"
    return check_env_choice(raw, LOG_FORMAT_ENV, _FORMATS)


def setup_logging(
    level: Optional[int] = None,
    fmt: Optional[str] = None,
    stream=None,
    force: bool = False,
) -> logging.Logger:
    """Configure the ``repro`` root logger (idempotent).

    Call with ``force=True`` to reconfigure after changing the env
    knobs (tests do); plain calls after the first are no-ops so
    libraries embedding the package can install their own handlers.
    """
    root = logging.getLogger(ROOT)
    if root.handlers and not force:
        return root
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = (
        logging.StreamHandler(stream)
        if stream is not None
        else _LazyStderrHandler()
    )
    resolved_format = fmt if fmt is not None else _env_format()
    handler.setFormatter(
        JsonLinesFormatter()
        if resolved_format == "json"
        else TextFormatter()
    )
    root.addHandler(handler)
    root.setLevel(level if level is not None else _env_level())
    root.propagate = False
    return root


def get_logger(name: str = ROOT) -> logging.Logger:
    """A configured logger under the ``repro`` root."""
    setup_logging()
    if name != ROOT and not name.startswith(ROOT + "."):
        name = f"{ROOT}.{name}"
    return logging.getLogger(name)
