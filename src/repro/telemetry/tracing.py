"""Span tracing that writes Chrome trace-event JSON (Perfetto-viewable).

A :class:`Tracer` collects complete (``"ph": "X"``) events; spans are
context managers timed on ``perf_counter`` with wall-clock ``ts``
microseconds so events from different processes line up on one
timeline. Thread-local span stacks give parent/child linkage inside a
process; across ``ParallelRuntime`` workers the *trace id* plus the
submitting batch's span id travel with each task, and the worker's
events come back piggybacked on the task result.

No tracer installed (the default) costs one global read per
instrumentation site: :func:`maybe_span` returns a shared no-op
context manager.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager, nullcontext
from pathlib import Path
from typing import Iterator, List, Optional

__all__ = [
    "TRACE_ENV",
    "Span",
    "Tracer",
    "install_tracer",
    "uninstall_tracer",
    "current_tracer",
    "maybe_span",
    "complete_event",
    "worker_tracer",
    "drain_worker_events",
]

#: Environment knob: path of a trace file to write (CLI ``--trace``
#: takes precedence).
TRACE_ENV = "REPRO_TRACE"

_NULL_SPAN = nullcontext(None)


class Span:
    """A finished-on-exit span handle (exposed for parenting)."""

    __slots__ = ("id", "name")

    def __init__(self, span_id: str, name: str) -> None:
        self.id = span_id
        self.name = name


class _SpanStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[str] = []


class Tracer:
    """Collects Chrome trace events; thread-safe; cheap when idle."""

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._events: List[dict] = []
        self._ids = itertools.count(1)
        self._tls = _SpanStack()
        self.pid = os.getpid()
        self.trace_id = (
            trace_id
            if trace_id is not None
            else f"{os.getpid():x}-{time.time_ns():x}"
        )

    # -- span API ----------------------------------------------------

    def _next_id(self) -> str:
        with self._lock:
            return f"{self.pid:x}.{next(self._ids)}"

    def current_span_id(self) -> Optional[str]:
        stack = self._tls.stack
        return stack[-1] if stack else None

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "repro",
        args: Optional[dict] = None,
        parent: Optional[str] = None,
    ) -> Iterator[Span]:
        span_id = self._next_id()
        if parent is None:
            parent = self.current_span_id()
        self._tls.stack.append(span_id)
        wall_us = time.time_ns() // 1_000
        start = time.perf_counter()
        try:
            yield Span(span_id, name)
        finally:
            duration_us = int(
                (time.perf_counter() - start) * 1e6
            )
            self._tls.stack.pop()
            event_args = {"span_id": span_id,
                          "trace_id": self.trace_id}
            if parent is not None:
                event_args["parent"] = parent
            if args:
                event_args.update(args)
            self._append({
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": wall_us,
                "dur": duration_us,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": event_args,
            })

    def complete(
        self,
        name: str,
        seconds: float,
        cat: str = "repro",
        args: Optional[dict] = None,
    ) -> None:
        """Record a span retroactively (it just ended, lasting
        ``seconds``) — for call sites that only know a duration."""
        end_us = time.time_ns() // 1_000
        event_args = {"span_id": self._next_id(),
                      "trace_id": self.trace_id}
        parent = self.current_span_id()
        if parent is not None:
            event_args["parent"] = parent
        if args:
            event_args.update(args)
        self._append({
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": end_us - int(seconds * 1e6),
            "dur": int(seconds * 1e6),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": event_args,
        })

    # -- event plumbing ----------------------------------------------

    def _append(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def extend(self, events: List[dict]) -> None:
        """Absorb events recorded in another process."""
        if events:
            with self._lock:
                self._events.extend(events)

    def drain(self) -> List[dict]:
        """Pop all collected events (worker-side piggyback)."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def events(self) -> List[dict]:
        with self._lock:
            return list(self._events)

    # -- output ------------------------------------------------------

    def to_chrome(self) -> dict:
        events = sorted(self.events(), key=lambda e: e["ts"])
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"trace_id": self.trace_id},
        }

    def write(self, path) -> None:
        Path(path).write_text(
            json.dumps(self.to_chrome(), indent=2) + "\n"
        )


# -- process-global tracer -------------------------------------------

_TRACER: Optional[Tracer] = None
_TRACER_PID: Optional[int] = None
_TRACER_LOCK = threading.Lock()


def install_tracer(tracer: Tracer) -> Tracer:
    global _TRACER, _TRACER_PID
    with _TRACER_LOCK:
        _TRACER = tracer
        _TRACER_PID = os.getpid()
    return tracer


def uninstall_tracer() -> None:
    global _TRACER, _TRACER_PID
    with _TRACER_LOCK:
        _TRACER = None
        _TRACER_PID = None


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None``.

    A forked worker inherits the parent's tracer object *including its
    past events*; re-emitting those would duplicate the timeline, so in
    a child process the inherited tracer is replaced by a fresh one
    carrying the same trace id (this is how trace ids stitch across
    fork).
    """
    tracer = _TRACER
    if tracer is None:
        return None
    if _TRACER_PID != os.getpid():
        fresh = Tracer(trace_id=tracer.trace_id)
        install_tracer(fresh)
        return fresh
    return tracer


def maybe_span(name, cat="repro", args=None):
    """A span if tracing is on, else a shared no-op context manager."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return current_tracer().span(name, cat=cat, args=args)


def complete_event(name, seconds, cat="repro", args=None):
    """Retroactive span if tracing is on; no-op otherwise."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.complete(name, seconds, cat=cat, args=args)


# -- worker-side helpers ---------------------------------------------

def worker_tracer(trace_id: str) -> Tracer:
    """The worker process's tracer, created on demand.

    Under ``fork`` the inherited global is rebuilt with the same trace
    id by :func:`current_tracer`; under ``spawn`` there is no global at
    all, so the trace id delivered in the task payload seeds one.
    """
    tracer = current_tracer()
    if tracer is None or tracer.trace_id != trace_id:
        tracer = install_tracer(Tracer(trace_id=trace_id))
    return tracer


def drain_worker_events() -> List[dict]:
    """Pop this process's trace events for the result piggyback."""
    tracer = current_tracer()
    return tracer.drain() if tracer is not None else []
