"""Step 3 — model-based design-space exploration.

:func:`heuristic_pareto_construction` implements the paper's Algorithm 1:
stochastic hill climbing whose acceptance test is insertion into a Pareto
archive of (estimated QoR, estimated HW cost), with random restarts from
the archive after ``stagnation_limit`` rejected moves.  The baselines the
paper compares against are here too: random sampling, the deterministic
uniform-selection heuristic, and exhaustive enumeration (for the optimal
reference front of Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import Configuration, ConfigurationSpace
from repro.core.modeling import EstimationModel
from repro.core.pareto import ParetoArchive, pareto_front_indices
from repro.errors import DSEError
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class DSEResult:
    """Outcome of one Pareto-construction run.

    ``points`` holds the (estimated QoR, estimated cost) pairs of the
    archive members — QoR in its natural orientation (higher is better).
    """

    configs: List[Configuration]
    points: np.ndarray
    evaluations: int
    inserts: int
    restarts: int

    def __len__(self) -> int:
        return len(self.configs)


def _estimate(
    qor_model: EstimationModel,
    hw_model: EstimationModel,
    configs: Sequence[Configuration],
) -> np.ndarray:
    qor = qor_model.predict(configs)
    cost = hw_model.predict(configs)
    return np.stack([qor, cost], axis=1)


def heuristic_pareto_construction(
    space: ConfigurationSpace,
    qor_model: EstimationModel,
    hw_model: EstimationModel,
    max_evaluations: int = 10_000,
    stagnation_limit: int = 50,
    rng: RngLike = 0,
    batch_size: int = 64,
) -> DSEResult:
    """Algorithm 1: hill climbing with a Pareto archive and restarts.

    Candidate neighbours are estimated in small batches so the tree
    ensembles amortise their per-call overhead; the batch is consumed
    sequentially, preserving the algorithm's move semantics (each
    accepted move changes the parent, and remaining candidates of the
    batch are discarded).
    """
    if max_evaluations < 1:
        raise DSEError("max_evaluations must be >= 1")
    if stagnation_limit < 1:
        raise DSEError("stagnation_limit must be >= 1")
    gen = ensure_rng(rng)
    archive = ParetoArchive(n_objectives=2)

    parent = space.random_configuration(gen)
    est = _estimate(qor_model, hw_model, [parent])[0]
    archive.insert((-est[0], est[1]), parent)
    evaluations = 1
    inserts = 1
    restarts = 0
    stagnation = 0

    while evaluations < max_evaluations:
        batch_n = min(batch_size, max_evaluations - evaluations)
        candidates = [space.neighbor(parent, gen) for _ in range(batch_n)]
        estimates = _estimate(qor_model, hw_model, candidates)
        for candidate, (eqor, ehw) in zip(candidates, estimates):
            evaluations += 1
            if archive.insert((-eqor, ehw), candidate):
                parent = candidate
                inserts += 1
                stagnation = 0
                break
            stagnation += 1
            if stagnation >= stagnation_limit:
                members = archive.payloads
                parent = members[int(gen.integers(0, len(members)))]
                restarts += 1
                stagnation = 0
                break

    points = archive.points
    points[:, 0] = -points[:, 0]
    return DSEResult(
        configs=list(archive.payloads),
        points=points,
        evaluations=evaluations,
        inserts=inserts,
        restarts=restarts,
    )


def random_sampling(
    space: ConfigurationSpace,
    qor_model: EstimationModel,
    hw_model: EstimationModel,
    max_evaluations: int = 10_000,
    rng: RngLike = 0,
) -> DSEResult:
    """RS baseline: estimate random configurations, keep the front."""
    if max_evaluations < 1:
        raise DSEError("max_evaluations must be >= 1")
    gen = ensure_rng(rng)
    configs = [
        space.random_configuration(gen) for _ in range(max_evaluations)
    ]
    estimates = _estimate(qor_model, hw_model, configs)
    minimised = np.stack([-estimates[:, 0], estimates[:, 1]], axis=1)
    front = pareto_front_indices(minimised)
    return DSEResult(
        configs=[configs[i] for i in front],
        points=estimates[front],
        evaluations=max_evaluations,
        inserts=len(front),
        restarts=0,
    )


def uniform_selection(
    space: ConfigurationSpace, n_points: int = 20
) -> List[Configuration]:
    """The manual baseline of Fig. 5: equal relative error everywhere.

    For each target error level, every operation picks the candidate whose
    WMED relative to the operation's output range is closest to the
    level.  Deterministic; duplicate configurations are collapsed.
    """
    if n_points < 1:
        raise DSEError("n_points must be >= 1")
    relative: List[np.ndarray] = []
    for slot, wmeds in zip(space.slots, space.wmeds):
        kind, width = slot.signature
        out_range = float(1 << (2 * width if kind == "mul" else width + 1))
        relative.append(wmeds / out_range)
    max_rel = max(float(r.max()) for r in relative)
    levels = np.linspace(0.0, max_rel, n_points)
    configs: List[Configuration] = []
    seen = set()
    for level in levels:
        genes = tuple(
            int(np.argmin(np.abs(rel - level))) for rel in relative
        )
        if genes not in seen:
            seen.add(genes)
            configs.append(genes)
    return configs


def exhaustive_search(
    space: ConfigurationSpace,
    qor_model: EstimationModel,
    hw_model: EstimationModel,
    batch_size: int = 200_000,
) -> DSEResult:
    """Estimate *every* configuration; exact front of the estimated space.

    Only feasible for reduced/capped spaces — this is the "optimal
    Pareto" reference of Table 4.
    """
    all_configs = space.enumerate_all()
    n = all_configs.shape[0]
    keep_configs: List[np.ndarray] = []
    keep_points: List[np.ndarray] = []
    for start in range(0, n, batch_size):
        block = all_configs[start : start + batch_size]
        est = _estimate(qor_model, hw_model, block)
        minimised = np.stack([-est[:, 0], est[:, 1]], axis=1)
        front = pareto_front_indices(minimised)
        keep_configs.append(block[front])
        keep_points.append(est[front])
    merged_configs = np.vstack(keep_configs)
    merged_points = np.vstack(keep_points)
    minimised = np.stack(
        [-merged_points[:, 0], merged_points[:, 1]], axis=1
    )
    front = pareto_front_indices(minimised)
    return DSEResult(
        configs=[tuple(int(g) for g in merged_configs[i]) for i in front],
        points=merged_points[front],
        evaluations=n,
        inserts=len(front),
        restarts=0,
    )
