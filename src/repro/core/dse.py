"""Step 3 — model-based design-space exploration.

:func:`heuristic_pareto_construction` implements the paper's Algorithm 1:
stochastic hill climbing whose acceptance test is insertion into a Pareto
archive of (estimated QoR, estimated HW cost), with random restarts from
the archive after ``stagnation_limit`` rejected moves.  The baselines the
paper compares against are here too: random sampling, the deterministic
uniform-selection heuristic, and exhaustive enumeration (for the optimal
reference front of Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.budget import EvaluationBudget, MeteredEstimator
from repro.core.configuration import Configuration, ConfigurationSpace
from repro.core.modeling import EstimationModel
from repro.core.pareto import ParetoArchive, pareto_front_indices
from repro.errors import DSEError
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class DSEResult:
    """Outcome of one Pareto-construction run.

    ``points`` holds the (estimated QoR, estimated cost) pairs of the
    archive members — QoR in its natural orientation (higher is better).
    """

    configs: List[Configuration]
    points: np.ndarray
    evaluations: int
    inserts: int
    restarts: int

    def __len__(self) -> int:
        return len(self.configs)


def _estimate(
    qor_model: EstimationModel,
    hw_model: EstimationModel,
    configs: Sequence[Configuration],
) -> np.ndarray:
    qor = qor_model.predict(configs)
    cost = hw_model.predict(configs)
    return np.stack([qor, cost], axis=1)


def heuristic_pareto_construction(
    space: ConfigurationSpace,
    qor_model: EstimationModel,
    hw_model: EstimationModel,
    max_evaluations: int = 10_000,
    stagnation_limit: int = 50,
    rng: RngLike = 0,
    batch_size: int = 64,
    budget: Optional[EvaluationBudget] = None,
    archive: Optional[ParetoArchive] = None,
) -> DSEResult:
    """Algorithm 1: hill climbing with a Pareto archive and restarts.

    Candidate neighbours are estimated in small batches so the tree
    ensembles amortise their per-call overhead; the batch is consumed
    sequentially, preserving the algorithm's move semantics (each
    accepted move changes the parent, and remaining candidates of the
    batch are discarded).  Every estimated candidate — including a
    discarded batch tail — costs one model evaluation and is charged
    against the budget, so ``DSEResult.evaluations`` equals the exact
    number of configurations sent to the models and never exceeds
    ``max_evaluations``.

    ``budget`` overrides ``max_evaluations`` with a shared
    :class:`~repro.core.budget.EvaluationBudget` (portfolio islands
    pass a slice of the global budget).  ``archive`` warm-starts the
    search from an existing Pareto archive in *minimised* objective
    space (``(-qor, cost)`` rows); the first parent is then drawn from
    the archive instead of being sampled (and estimated) at random.
    """
    if budget is None:
        if max_evaluations < 1:
            raise DSEError("max_evaluations must be >= 1")
        budget = EvaluationBudget(max_evaluations)
    if stagnation_limit < 1:
        raise DSEError("stagnation_limit must be >= 1")
    gen = ensure_rng(rng)
    if archive is None:
        archive = ParetoArchive(n_objectives=2)
    estimator = MeteredEstimator(qor_model, hw_model, budget)

    inserts = 0
    restarts = 0
    stagnation = 0
    if len(archive):
        members = archive.payloads
        parent = members[int(gen.integers(0, len(members)))]
    else:
        if budget.grant(1) == 0:
            raise DSEError(
                "evaluation budget exhausted before the initial sample"
            )
        parent = space.random_configuration(gen)
        est = estimator.estimate([parent])[0]
        archive.insert((-est[0], est[1]), parent)
        inserts = 1

    while True:
        # Adaptive batch ramp: a batch is discarded from the point of
        # an accepted move or restart, and discarded candidates now
        # cost real budget — so stay small while moves are being
        # accepted (tails are then short) and grow towards
        # ``batch_size`` during stagnant stretches, where the whole
        # batch gets consumed and the per-call overhead amortised.
        batch_n = budget.grant(min(batch_size, stagnation + 4))
        if batch_n == 0:
            break
        candidates = space.neighbors(parent, batch_n, gen)
        estimates = estimator.estimate(candidates)
        for candidate, (eqor, ehw) in zip(candidates, estimates):
            if archive.insert((-eqor, ehw), candidate):
                parent = candidate
                inserts += 1
                stagnation = 0
                break
            stagnation += 1
            if stagnation >= stagnation_limit:
                members = archive.payloads
                parent = members[int(gen.integers(0, len(members)))]
                restarts += 1
                stagnation = 0
                break

    points = archive.points
    points[:, 0] = -points[:, 0]
    return DSEResult(
        configs=list(archive.payloads),
        points=points,
        evaluations=estimator.count,
        inserts=inserts,
        restarts=restarts,
    )


def random_sampling(
    space: ConfigurationSpace,
    qor_model: EstimationModel,
    hw_model: EstimationModel,
    max_evaluations: int = 10_000,
    rng: RngLike = 0,
    budget: Optional[EvaluationBudget] = None,
) -> DSEResult:
    """RS baseline: estimate random configurations, keep the front."""
    if budget is None:
        if max_evaluations < 1:
            raise DSEError("max_evaluations must be >= 1")
        budget = EvaluationBudget(max_evaluations)
    gen = ensure_rng(rng)
    estimator = MeteredEstimator(qor_model, hw_model, budget)
    count = budget.grant(max_evaluations)
    if count == 0:
        raise DSEError(
            "evaluation budget exhausted before the initial sample"
        )
    configs = [space.random_configuration(gen) for _ in range(count)]
    estimates = estimator.estimate(configs)
    minimised = np.stack([-estimates[:, 0], estimates[:, 1]], axis=1)
    front = pareto_front_indices(minimised)
    return DSEResult(
        configs=[configs[i] for i in front],
        points=estimates[front],
        evaluations=estimator.count,
        inserts=len(front),
        restarts=0,
    )


def uniform_selection(
    space: ConfigurationSpace, n_points: int = 20
) -> List[Configuration]:
    """The manual baseline of Fig. 5: equal relative error everywhere.

    For each target error level, every operation picks the candidate whose
    WMED relative to the operation's output range is closest to the
    level.  Deterministic; duplicate configurations are collapsed.
    """
    if n_points < 1:
        raise DSEError("n_points must be >= 1")
    relative: List[np.ndarray] = []
    for slot, wmeds in zip(space.slots, space.wmeds):
        kind, width = slot.signature
        out_range = float(1 << (2 * width if kind == "mul" else width + 1))
        relative.append(wmeds / out_range)
    max_rel = max(float(r.max()) for r in relative)
    levels = np.linspace(0.0, max_rel, n_points)
    configs: List[Configuration] = []
    seen = set()
    for level in levels:
        genes = tuple(
            int(np.argmin(np.abs(rel - level))) for rel in relative
        )
        if genes not in seen:
            seen.add(genes)
            configs.append(genes)
    return configs


def exhaustive_search(
    space: ConfigurationSpace,
    qor_model: EstimationModel,
    hw_model: EstimationModel,
    batch_size: int = 200_000,
    budget: Optional[EvaluationBudget] = None,
    offset: int = 0,
) -> DSEResult:
    """Estimate *every* configuration; exact front of the estimated space.

    Only feasible for reduced/capped spaces — this is the "optimal
    Pareto" reference of Table 4.  With a ``budget`` the enumeration is
    *capped*: it scans configurations in enumeration order starting at
    ``offset`` (wrapping is the caller's concern) and stops when the
    budget runs out, so the budget-limited variant is usable as a
    portfolio island.
    """
    all_configs = space.enumerate_all()
    n = all_configs.shape[0]
    if budget is None:
        budget = EvaluationBudget(n)
    if not 0 <= offset <= n:
        raise DSEError(f"offset {offset} outside [0, {n}]")
    estimator = MeteredEstimator(qor_model, hw_model, budget)
    keep_configs: List[np.ndarray] = []
    keep_points: List[np.ndarray] = []
    start = offset
    while start < n:
        block_n = budget.grant(min(batch_size, n - start))
        if block_n == 0:
            break
        block = all_configs[start : start + block_n]
        start += block_n
        est = estimator.estimate(block)
        minimised = np.stack([-est[:, 0], est[:, 1]], axis=1)
        front = pareto_front_indices(minimised)
        keep_configs.append(block[front])
        keep_points.append(est[front])
    if not keep_configs:
        raise DSEError(
            "evaluation budget exhausted before the first block"
        )
    merged_configs = np.vstack(keep_configs)
    merged_points = np.vstack(keep_points)
    minimised = np.stack(
        [-merged_points[:, 0], merged_points[:, 1]], axis=1
    )
    front = pareto_front_indices(minimised)
    return DSEResult(
        configs=[tuple(int(g) for g in merged_configs[i]) for i in front],
        points=merged_points[front],
        evaluations=estimator.count,
        inserts=len(front),
        restarts=0,
    )
