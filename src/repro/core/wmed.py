"""Weighted mean error distance (paper §2.2).

``WMED_k(M~) = sum_i D_k(i) * |M(i) - M~(i)|`` — the mean error distance of
an approximate circuit under the *empirical operand distribution* of the
operation it would replace.  Narrow operations use the profiler's dense
PMF (exact expectation); wide operations fall back to the recorded operand
samples (empirical expectation over the same distribution).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.accelerators.profiler import OperandProfile
from repro.circuits.luts import build_exact_lut
from repro.library.component import ComponentRecord

#: Cache of exact-operation LUTs keyed by operation signature.
_EXACT_LUTS: Dict[tuple, np.ndarray] = {}


def _exact_lut(record: ComponentRecord) -> np.ndarray:
    sig = record.signature
    if sig not in _EXACT_LUTS:
        _EXACT_LUTS[sig] = build_exact_lut(record.circuit)
    return _EXACT_LUTS[sig]


def wmed(record: ComponentRecord, profile: OperandProfile) -> float:
    """WMED of ``record`` under the operand distribution of ``profile``."""
    if record.signature != profile.signature:
        raise ValueError(
            f"signature mismatch: component {record.signature} vs "
            f"profile {profile.signature}"
        )
    if profile.pmf is not None:
        diff = np.abs(record.lut() - _exact_lut(record))
        return float(profile.pmf @ diff)
    a, b = profile.sample_a, profile.sample_b
    approx = np.asarray(record.circuit.evaluate(a, b), dtype=np.int64)
    exact = np.asarray(record.circuit.exact(a, b), dtype=np.int64)
    return float(np.mean(np.abs(approx - exact)))


def wmed_table(
    records: Sequence[ComponentRecord], profile: OperandProfile
) -> np.ndarray:
    """WMED of every record in ``records`` (float64 array)."""
    return np.asarray([wmed(r, profile) for r in records], dtype=np.float64)
