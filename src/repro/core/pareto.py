"""Pareto-front utilities.

All helpers treat objectives as *minimised*; callers negate
maximise-objectives (e.g. SSIM) before use.  Includes the archive used by
Algorithm 1 (``ParetoInsert``), non-dominated filtering for final front
construction (any dimension count, used for the area/SSIM/energy selection
of §4.2), 2-D hypervolume, and the directed front distances of Table 4.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def dominates(p: np.ndarray, q: np.ndarray) -> bool:
    """True when point ``p`` Pareto-dominates ``q`` (all <=, one <)."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    return bool(np.all(p <= q) and np.any(p < q))


def pareto_front_indices(points: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated rows of ``points`` (minimisation).

    O(n log n) sweep for two objectives, O(n^2 / batch) mask elimination
    otherwise.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("points must be a non-empty 2-D array")
    n, d = points.shape
    if d == 2:
        order = np.lexsort((points[:, 1], points[:, 0]))
        best_second = np.inf
        keep: List[int] = []
        for idx in order:
            if points[idx, 1] < best_second:
                keep.append(idx)
                best_second = points[idx, 1]
        return np.asarray(sorted(keep), dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    for i in range(n):
        if not alive[i]:
            continue
        p = points[i]
        beaten_by_p = np.all(p <= points, axis=1) & np.any(
            p < points, axis=1
        )
        alive &= ~beaten_by_p
        beats_p = np.all(points[alive] <= p, axis=1) & np.any(
            points[alive] < p, axis=1
        )
        alive[i] = not bool(np.any(beats_p))
    return np.nonzero(alive)[0].astype(np.int64)


class ParetoArchive:
    """Mutable archive of non-dominated (objective vector, payload) pairs."""

    def __init__(self, n_objectives: int = 2):
        if n_objectives < 1:
            raise ValueError("need at least one objective")
        self.n_objectives = n_objectives
        self._points = np.empty((0, n_objectives), dtype=float)
        self._payloads: List[object] = []

    def __len__(self) -> int:
        return len(self._payloads)

    @property
    def points(self) -> np.ndarray:
        """Objective vectors of the archive members (copy)."""
        return self._points.copy()

    @property
    def payloads(self) -> List[object]:
        return list(self._payloads)

    def copy(self) -> "ParetoArchive":
        """Independent clone (used to hand islands their own archive)."""
        clone = ParetoArchive(self.n_objectives)
        clone._points = self._points.copy()
        clone._payloads = list(self._payloads)
        return clone

    def insert(self, point: Sequence[float], payload: object) -> bool:
        """ParetoInsert: add unless dominated; evict dominated members.

        Returns True when the point entered the archive (the paper's
        condition for accepting a hill-climbing move).  Duplicates of an
        existing objective vector are rejected.
        """
        point = np.asarray(point, dtype=float).reshape(-1)
        if point.shape[0] != self.n_objectives:
            raise ValueError(
                f"expected {self.n_objectives} objectives, got {point.shape}"
            )
        if len(self._payloads):
            dominated_by = np.all(self._points <= point, axis=1) & np.any(
                self._points < point, axis=1
            )
            duplicate = np.all(self._points == point, axis=1)
            if np.any(dominated_by) or np.any(duplicate):
                return False
            wiped = np.all(point <= self._points, axis=1) & np.any(
                point < self._points, axis=1
            )
            if np.any(wiped):
                keep = ~wiped
                self._points = self._points[keep]
                self._payloads = [
                    pl for pl, k in zip(self._payloads, keep) if k
                ]
        self._points = np.vstack([self._points, point[None, :]])
        self._payloads.append(payload)
        return True

    def insert_many(
        self, points: np.ndarray, payloads: Sequence[object]
    ) -> np.ndarray:
        """Vectorised bulk insertion; returns the per-point accepted mask.

        The archive ends up holding exactly the joint Pareto front of
        its previous members and ``points`` (one non-dominated sweep
        over the stacked array instead of ``len(points)`` pairwise
        passes).  Ties: existing members win over new points with equal
        objective vectors, earlier batch rows win over later ones — the
        same outcome sequential :meth:`insert` calls produce.  A point
        that enters the front is reported accepted even if the batch
        also evicts it later-dominated members; a point dominated by
        *any* member of the joint front is rejected.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.n_objectives:
            raise ValueError(
                f"expected (n, {self.n_objectives}) points, "
                f"got {points.shape}"
            )
        if points.shape[0] != len(payloads):
            raise ValueError("points and payloads must align")
        accepted = np.zeros(points.shape[0], dtype=bool)
        if points.shape[0] == 0:
            return accepted
        n_old = len(self._payloads)
        combined = np.vstack([self._points, points])
        combined_payloads = self._payloads + list(payloads)
        front = set(pareto_front_indices(combined).tolist())
        seen = set()
        new_points: List[np.ndarray] = []
        new_payloads: List[object] = []
        for i in range(combined.shape[0]):
            if i not in front:
                continue
            key = tuple(combined[i])
            if key in seen:
                continue
            seen.add(key)
            new_points.append(combined[i])
            new_payloads.append(combined_payloads[i])
            if i >= n_old:
                accepted[i - n_old] = True
        self._points = np.asarray(new_points, dtype=float).reshape(
            -1, self.n_objectives
        )
        self._payloads = new_payloads
        return accepted


def hypervolume_2d(
    points: np.ndarray, reference: Sequence[float]
) -> float:
    """Dominated hypervolume of a 2-D minimisation front w.r.t. reference."""
    points = np.asarray(points, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("hypervolume_2d expects (n, 2) points")
    front = points[pareto_front_indices(points)]
    front = front[np.argsort(front[:, 0])]
    # Sweep in x, accumulating the horizontal strip each point adds.
    volume = 0.0
    last_y = reference[1]
    for x, y in front:
        if x >= reference[0]:
            break
        y = min(y, last_y)
        if y < last_y:
            volume += (reference[0] - x) * (last_y - y)
            last_y = y
    return float(volume)


def _normalise(
    points: np.ndarray, low: np.ndarray, span: np.ndarray
) -> np.ndarray:
    return (points - low) / span


def front_distances(
    obtained: np.ndarray,
    optimal: np.ndarray,
    bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> dict:
    """The paper's Table 4 distance statistics between two fronts.

    Objective vectors are normalised to [0, 1] (jointly, unless explicit
    ``bounds = (low, high)`` are given).  Returns the average and maximum
    of the directed Euclidean distances obtained->optimal ("to optimal")
    and optimal->obtained ("from optimal").
    """
    obtained = np.asarray(obtained, dtype=float)
    optimal = np.asarray(optimal, dtype=float)
    if obtained.ndim != 2 or optimal.ndim != 2:
        raise ValueError("fronts must be 2-D arrays")
    if obtained.shape[1] != optimal.shape[1]:
        raise ValueError("fronts must share the objective count")
    if bounds is None:
        stacked = np.vstack([obtained, optimal])
        low = stacked.min(axis=0)
        high = stacked.max(axis=0)
    else:
        low, high = (np.asarray(b, dtype=float) for b in bounds)
    span = np.where(high - low > 0, high - low, 1.0)
    a = _normalise(obtained, low, span)
    b = _normalise(optimal, low, span)
    d2 = (
        np.sum(a**2, axis=1)[:, None]
        - 2.0 * a @ b.T
        + np.sum(b**2, axis=1)[None, :]
    )
    d = np.sqrt(np.maximum(d2, 0.0))
    to_optimal = d.min(axis=1)
    from_optimal = d.min(axis=0)
    return {
        "to_optimal_avg": float(to_optimal.mean()),
        "to_optimal_max": float(to_optimal.max()),
        "from_optimal_avg": float(from_optimal.mean()),
        "from_optimal_max": float(from_optimal.max()),
    }
