"""Step 2 — construction of the QoR and hardware estimation models.

A training set of randomly drawn configurations is evaluated *for real*
(simulation + synthesis); learning engines are fitted on the per-component
features and ranked by test-set **fidelity** (paper §2.3).  The best
engine becomes the estimation model used during design-space exploration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import (
    HW_FEATURES,
    Configuration,
    ConfigurationSpace,
)
from repro.core.evaluation import AcceleratorEvaluator
from repro.errors import ModelError
from repro.ml.base import Regressor
from repro.ml.fidelity import fidelity
from repro.ml.metrics import r2_score
from repro.ml.naive import NaiveAdditiveModel
from repro.ml.registry import default_engines, make_engine
from repro.utils.rng import RngLike, ensure_rng

#: Estimation targets supported out of the box.  ``qor`` uses the WMED
#: feature vector; the hardware targets use per-component area/power/delay.
TARGETS = ("qor", "area", "delay", "power", "energy")

#: Process-wide count of regressor fits (``EstimationModel.fit`` calls).
#: The experiment store's warm-start tests assert this stays flat across
#: a fully cached pipeline run — zero model refits.
_FIT_COUNT = 0


def fit_count() -> int:
    """Number of regressor fits performed by this process so far."""
    return _FIT_COUNT


@dataclass
class TrainingSet:
    """Real-evaluated configurations for model fitting."""

    configs: List[Configuration]
    qor: np.ndarray
    area: np.ndarray
    delay: np.ndarray
    power: np.ndarray

    @property
    def energy(self) -> np.ndarray:
        return self.power * self.delay

    def target(self, name: str) -> np.ndarray:
        if name == "qor":
            return self.qor
        if name == "area":
            return self.area
        if name == "delay":
            return self.delay
        if name == "power":
            return self.power
        if name == "energy":
            return self.energy
        raise ModelError(f"unknown target {name!r}; supported: {TARGETS}")

    def __len__(self) -> int:
        return len(self.configs)


def build_training_set(
    space: ConfigurationSpace,
    evaluator: AcceleratorEvaluator,
    count: int,
    rng: RngLike = 0,
    workers: Optional[int] = None,
) -> TrainingSet:
    """Draw ``count`` random configurations and analyse them fully.

    ``workers`` is forwarded to the evaluation engine's ``evaluate_many``
    (process-parallel real evaluation); ``None`` keeps the evaluator's
    own default.
    """
    if count < 1:
        raise ModelError("training set needs at least one configuration")
    gen = ensure_rng(rng)
    configs = space.random_configurations(count, gen)
    # workers=None defers to the evaluator's own default.
    results = evaluator.evaluate_many(space, configs, workers=workers)
    return TrainingSet(
        configs=configs,
        qor=np.asarray([r.qor for r in results]),
        area=np.asarray([r.area for r in results]),
        delay=np.asarray([r.delay for r in results]),
        power=np.asarray([r.power for r in results]),
    )


class EstimationModel:
    """A fitted regressor bound to the space's feature extraction."""

    def __init__(
        self,
        name: str,
        regressor: Regressor,
        space: ConfigurationSpace,
        target: str,
        hw_features: Sequence[str] = HW_FEATURES,
    ):
        if target not in TARGETS:
            raise ModelError(f"unknown target {target!r}")
        self.name = name
        self.regressor = regressor
        self.space = space
        self.target = target
        self.hw_features = tuple(hw_features)

    def features(self, configs) -> np.ndarray:
        if self.target == "qor":
            return self.space.qor_features(configs)
        return self.space.hw_features(configs, self.hw_features)

    def fit(self, configs, y) -> "EstimationModel":
        global _FIT_COUNT
        _FIT_COUNT += 1
        self.regressor.fit(self.features(configs), np.asarray(y, float))
        return self

    def predict(self, configs) -> np.ndarray:
        return self.regressor.predict(self.features(configs))

    def predict_one(self, config: Configuration) -> float:
        return float(self.predict([config])[0])


@dataclass
class EngineReport:
    """Fidelity / accuracy scores of one fitted engine."""

    name: str
    target: str
    fidelity_train: float
    fidelity_test: float
    r2_train: float
    r2_test: float
    fit_seconds: float
    model: EstimationModel = field(repr=False)


def naive_model(
    space: ConfigurationSpace,
    target: str,
    hw_features: Sequence[str] = HW_FEATURES,
) -> EstimationModel:
    """The paper's naive additive models (§4.1.2).

    Area: sum of the per-component areas.  QoR: negative sum of the
    per-component WMEDs.
    """
    if target == "qor":
        reg = NaiveAdditiveModel(sign=-1.0)
    elif target == "area":
        reg = NaiveAdditiveModel(
            columns=space.area_columns(hw_features), sign=1.0
        )
    else:
        raise ModelError(f"unknown target {target!r}")
    return EstimationModel("Naive model", reg, space, target, hw_features)


def fit_engines(
    space: ConfigurationSpace,
    train: TrainingSet,
    test: TrainingSet,
    target: str,
    engines: Optional[Sequence[str]] = None,
    include_naive: bool = True,
    hw_features: Sequence[str] = HW_FEATURES,
    seed: int = 0,
) -> List[EngineReport]:
    """Fit every engine on ``train``, score fidelity on train and test."""
    names = list(engines) if engines is not None else default_engines()
    y_train = train.target(target)
    y_test = test.target(target)
    reports: List[EngineReport] = []

    candidates: List[Tuple[str, EstimationModel]] = [
        (
            name,
            EstimationModel(
                name, make_engine(name, seed), space, target, hw_features
            ),
        )
        for name in names
    ]
    if include_naive and target in ("qor", "area"):
        candidates.append(
            ("Naive model", naive_model(space, target, hw_features))
        )

    for name, model in candidates:
        start = time.perf_counter()
        model.fit(train.configs, y_train)
        elapsed = time.perf_counter() - start
        pred_train = model.predict(train.configs)
        pred_test = model.predict(test.configs)
        reports.append(
            EngineReport(
                name=name,
                target=target,
                fidelity_train=fidelity(y_train, pred_train),
                fidelity_test=fidelity(y_test, pred_test),
                r2_train=r2_score(y_train, pred_train),
                r2_test=r2_score(y_test, pred_test),
                fit_seconds=elapsed,
                model=model,
            )
        )
    return reports


def reports_to_payload(reports: Sequence[EngineReport]) -> List[Dict]:
    """Picklable payload of fitted engine reports (no space backrefs).

    The configuration space is deliberately excluded — it embeds the
    whole candidate library (LUT caches included) and is reconstructed
    from its own store artifact; :func:`reports_from_payload` rebinds the
    fitted regressors to a live space.
    """
    return [
        {
            "name": r.name,
            "target": r.target,
            "fidelity_train": r.fidelity_train,
            "fidelity_test": r.fidelity_test,
            "r2_train": r.r2_train,
            "r2_test": r.r2_test,
            "fit_seconds": r.fit_seconds,
            "hw_features": r.model.hw_features,
            "regressor": r.model.regressor,
        }
        for r in reports
    ]


def reports_from_payload(
    payload: Sequence[Dict], space: ConfigurationSpace
) -> List[EngineReport]:
    """Rebuild :class:`EngineReport` objects against a live ``space``."""
    reports = []
    for entry in payload:
        model = EstimationModel(
            entry["name"],
            entry["regressor"],
            space,
            entry["target"],
            entry["hw_features"],
        )
        reports.append(
            EngineReport(
                name=entry["name"],
                target=entry["target"],
                fidelity_train=entry["fidelity_train"],
                fidelity_test=entry["fidelity_test"],
                r2_train=entry["r2_train"],
                r2_test=entry["r2_test"],
                fit_seconds=entry["fit_seconds"],
                model=model,
            )
        )
    return reports


def select_best_model(reports: Sequence[EngineReport]) -> EngineReport:
    """Pick the engine with the highest *test* fidelity (paper §2.3)."""
    if not reports:
        raise ModelError("no engine reports to select from")
    return max(reports, key=lambda r: r.fidelity_test)
