"""Configuration space: the reduced libraries RL_1 x ... x RL_n.

A *configuration* assigns one library component to every replaceable
operation; it is represented as a tuple of integer indices into the
per-slot candidate lists.  The space also owns the per-candidate feature
arrays the estimation models consume:

* QoR features — the WMED of the chosen circuit of every slot (paper
  §4.1.2), and
* hardware features — area, power and delay of every chosen circuit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.base import OpSlot
from repro.circuits.luts import MAX_LUT_WIDTH
from repro.errors import DSEError
from repro.library.component import ComponentRecord
from repro.utils.bitops import bit_mask
from repro.utils.rng import RngLike, ensure_rng

Configuration = Tuple[int, ...]

#: Hardware feature names per slot, in column order.
HW_FEATURES = ("area", "power", "delay")


class ConfigurationSpace:
    """Candidate components per operation slot plus feature tables."""

    def __init__(
        self,
        slots: Sequence[OpSlot],
        choices: Sequence[Sequence[ComponentRecord]],
        wmeds: Sequence[Sequence[float]],
    ):
        if len(slots) != len(choices) or len(slots) != len(wmeds):
            raise DSEError("slots, choices and wmeds must align")
        if not slots:
            raise DSEError("a configuration space needs at least one slot")
        for slot, group in zip(slots, choices):
            if not group:
                raise DSEError(f"slot {slot.name!r} has no candidates")
            for record in group:
                if record.signature != slot.signature:
                    raise DSEError(
                        f"candidate {record.name!r} has signature "
                        f"{record.signature}, slot {slot.name!r} needs "
                        f"{slot.signature}"
                    )
        self.slots = list(slots)
        self.choices: List[List[ComponentRecord]] = [
            list(group) for group in choices
        ]
        self.wmeds: List[np.ndarray] = [
            np.asarray(w, dtype=np.float64) for w in wmeds
        ]
        for group, w in zip(self.choices, self.wmeds):
            if len(group) != w.shape[0]:
                raise DSEError("wmed table length mismatch")
        self._hw: List[np.ndarray] = []
        for group in self.choices:
            table = np.asarray(
                [
                    (r.hardware.area, r.hardware.power, r.hardware.delay)
                    for r in group
                ],
                dtype=np.float64,
            )
            self._hw.append(table)
        # Compiled feature tables: the per-slot candidate tables laid
        # out flat with per-slot offsets, so a whole (m, n_slots) batch
        # gathers its features in one indexing pass instead of a Python
        # loop over slots.  The gathered values are the same float64
        # entries, so features — and every model predict built on them —
        # stay bit-identical to the per-slot path.
        sizes = np.asarray(self.slot_sizes(), dtype=np.int64)
        self._sizes = sizes
        self._offsets = np.concatenate(
            ([0], np.cumsum(sizes[:-1]))
        ).astype(np.int64)
        self._wmed_flat = np.concatenate(self.wmeds)
        self._hw_flat = np.vstack(self._hw)
        self._stat_flat: Dict[str, np.ndarray] = {}
        # Per-slot caches rebuilt lazily (and dropped from pickles, see
        # __getstate__): stacked candidate LUTs for the config-axis
        # batched engine path and memoised per-candidate impl closures.
        self._slot_luts: Dict[int, np.ndarray] = {}
        self._impl_memo: Dict[Tuple[int, int], Callable] = {}

    def __getstate__(self):
        """Pickle without the lazy per-slot caches.

        The impl closures are unpicklable (nested functions) and the
        stacked LUTs are bulky duplicates of the per-record tables;
        both rebuild lazily on first use, so workers receiving a space
        through the parallel runtime start from empty caches.
        """
        state = self.__dict__.copy()
        state["_slot_luts"] = {}
        state["_impl_memo"] = {}
        return state

    # -- basic queries ------------------------------------------------------

    @property
    def n_slots(self) -> int:
        return len(self.slots)

    def slot_sizes(self) -> List[int]:
        return [len(group) for group in self.choices]

    def size(self) -> float:
        """Number of configurations (float: may overflow int displays)."""
        total = 1.0
        for group in self.choices:
            total *= len(group)
        return total

    def validate_configuration(self, config: Configuration) -> None:
        if len(config) != self.n_slots:
            raise DSEError(
                f"configuration has {len(config)} genes, space has "
                f"{self.n_slots} slots"
            )
        for k, idx in enumerate(config):
            if not 0 <= idx < len(self.choices[k]):
                raise DSEError(
                    f"gene {k} = {idx} out of range "
                    f"[0, {len(self.choices[k])})"
                )

    # -- sampling ------------------------------------------------------------

    def random_configuration(self, rng: RngLike = None) -> Configuration:
        gen = ensure_rng(rng)
        return tuple(
            int(gen.integers(0, len(group))) for group in self.choices
        )

    def random_configurations(
        self, count: int, rng: RngLike = None, unique: bool = True
    ) -> List[Configuration]:
        """Sample ``count`` configurations (unique when feasible)."""
        gen = ensure_rng(rng)
        if not unique or count >= self.size():
            return [self.random_configuration(gen) for _ in range(count)]
        seen = set()
        out: List[Configuration] = []
        while len(out) < count:
            config = self.random_configuration(gen)
            if config not in seen:
                seen.add(config)
                out.append(config)
        return out

    def neighbor(
        self, config: Configuration, rng: RngLike = None
    ) -> Configuration:
        """Mutate one randomly chosen gene to a different candidate."""
        gen = ensure_rng(rng)
        mutable = [k for k in range(self.n_slots) if len(self.choices[k]) > 1]
        if not mutable:
            return tuple(config)
        k = int(mutable[gen.integers(0, len(mutable))])
        current = config[k]
        new = int(gen.integers(0, len(self.choices[k]) - 1))
        if new >= current:
            new += 1
        out = list(config)
        out[k] = new
        return tuple(out)

    def neighbors(
        self, config: Configuration, count: int, rng: RngLike = None
    ) -> List[Configuration]:
        """``count`` independent one-gene mutations of ``config``.

        Vectorised batch variant of :meth:`neighbor` — one RNG call per
        batch instead of three per candidate — used by the hill
        climber's candidate generation (each candidate mutates the same
        parent, matching the per-call semantics).
        """
        if count < 0:
            raise DSEError("count must be non-negative")
        if count == 0:
            return []
        gen = ensure_rng(rng)
        sizes = np.asarray(self.slot_sizes(), dtype=np.int64)
        mutable = np.nonzero(sizes > 1)[0]
        if mutable.size == 0:
            return [tuple(config) for _ in range(count)]
        base = np.asarray(config, dtype=np.int64)
        slots = mutable[gen.integers(0, mutable.size, size=count)]
        # Draw in [0, size-1) and skip over the current gene so the
        # mutation always changes the slot's candidate.
        draws = (
            gen.random(count) * (sizes[slots] - 1)
        ).astype(np.int64)
        draws += draws >= base[slots]
        out = np.tile(base, (count, 1))
        out[np.arange(count), slots] = draws
        return [tuple(int(g) for g in row) for row in out]

    def enumerate_all(self) -> np.ndarray:
        """All configurations as an (N, n_slots) int array (small spaces)."""
        total = self.size()
        if total > 5e7:
            raise DSEError(
                f"space has {total:.3g} configurations; enumeration refused"
            )
        grids = np.meshgrid(
            *[np.arange(len(g)) for g in self.choices], indexing="ij"
        )
        return np.stack([g.reshape(-1) for g in grids], axis=1)

    # -- features ------------------------------------------------------------

    def _as_matrix(self, configs) -> np.ndarray:
        arr = np.asarray(configs, dtype=np.int64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.shape[1] != self.n_slots:
            raise DSEError(
                f"configurations have {arr.shape[1]} genes, expected "
                f"{self.n_slots}"
            )
        return arr

    def _flat_indices(self, configs) -> np.ndarray:
        """Genes shifted into the flat candidate tables, bounds-checked.

        The flat layout would silently read a neighbouring slot's entry
        for an out-of-range gene, so the whole batch is range-checked
        first (one vectorised compare — the per-slot path raised an
        ``IndexError`` here instead).
        """
        arr = self._as_matrix(configs)
        if np.any((arr < 0) | (arr >= self._sizes)):
            raise DSEError("configuration gene out of range")
        return arr + self._offsets

    def qor_features(self, configs) -> np.ndarray:
        """(m, n_slots) WMED feature matrix for a batch of configurations."""
        return self._wmed_flat[self._flat_indices(configs)]

    def error_stat_features(self, configs, stat: str) -> np.ndarray:
        """(m, n_slots) matrix of a uniform-input error statistic.

        ``stat`` names an attribute of
        :class:`~repro.circuits.characterization.ErrorStats` (e.g.
        ``error_var``, ``wce``, ``mre``).  Used by feature-set ablations —
        the paper reports that adding the error variance to the WMED
        features does not improve QoR-model fidelity (§4.1.2).
        """
        flat = self._stat_flat.get(stat)
        if flat is None:
            tables = []
            for group in self.choices:
                try:
                    tables.append(
                        np.asarray(
                            [getattr(r.errors, stat) for r in group],
                            dtype=np.float64,
                        )
                    )
                except AttributeError:
                    raise DSEError(f"unknown error statistic {stat!r}")
            flat = np.concatenate(tables)
            self._stat_flat[stat] = flat
        return flat[self._flat_indices(configs)]

    def hw_features(
        self, configs, features: Sequence[str] = HW_FEATURES
    ) -> np.ndarray:
        """(m, n_slots * len(features)) hardware feature matrix."""
        indices = []
        for f in features:
            if f not in HW_FEATURES:
                raise DSEError(f"unknown hardware feature {f!r}")
            indices.append(HW_FEATURES.index(f))
        gathered = self._hw_flat[self._flat_indices(configs)]
        # (m, n_slots, features) -> slot-major columns, same order as
        # the old per-slot loop: slot0 features, slot1 features, ...
        selected = gathered[:, :, indices]
        return np.ascontiguousarray(
            selected.reshape(selected.shape[0], -1)
        )

    def area_columns(
        self, features: Sequence[str] = HW_FEATURES
    ) -> List[int]:
        """Column indices of the per-slot *area* feature in hw_features."""
        if "area" not in features:
            raise DSEError("'area' is not among the selected features")
        stride = len(features)
        offset = list(features).index("area")
        return [k * stride + offset for k in range(self.n_slots)]

    # -- realisation ------------------------------------------------------------

    def records(self, config: Configuration) -> Dict[str, ComponentRecord]:
        """Component assignment (op name -> record) for ``config``."""
        self.validate_configuration(config)
        return {
            slot.name: self.choices[k][config[k]]
            for k, slot in enumerate(self.slots)
        }

    def assignment_callables(
        self, config: Configuration
    ) -> Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]]:
        """Vectorised op implementations for software simulation.

        Impls are memoised per ``(slot, candidate)``: repeated
        evaluations of overlapping configurations reuse the same
        closures (and the LUT views captured inside them) instead of
        re-fetching ``record.lut()`` and allocating a fresh closure per
        slot per call.
        """
        self.validate_configuration(config)
        impls: Dict[str, Callable] = {}
        for k, slot in enumerate(self.slots):
            key = (k, config[k])
            impl = self._impl_memo.get(key)
            if impl is None:
                impl = _make_impl(self.choices[k][config[k]])
                self._impl_memo[key] = impl
            impls[slot.name] = impl
        return impls

    # -- configuration-axis batching ----------------------------------------

    def lut_capable(self) -> bool:
        """True when every slot's candidates fit the exhaustive-LUT limit."""
        return all(
            group[0].width <= MAX_LUT_WIDTH for group in self.choices
        )

    def stacked_lut(self, k: int) -> np.ndarray:
        """Concatenated candidate LUTs of slot ``k`` (cached).

        Candidate ``i`` occupies entries ``[i * 4**width, (i + 1) *
        4**width)``; each block is exactly ``choices[k][i].lut()``, so a
        gather at offset ``i * 4**width + j`` reads the same int64 value
        the per-configuration LUT impl would.
        """
        flat = self._slot_luts.get(k)
        if flat is None:
            group = self.choices[k]
            if group[0].width > MAX_LUT_WIDTH:
                raise DSEError(
                    f"slot {self.slots[k].name!r} exceeds the LUT limit"
                )
            flat = np.concatenate(
                [np.asarray(r.lut(), dtype=np.int64) for r in group]
            )
            flat.flags.writeable = False
            self._slot_luts[k] = flat
        return flat

    def batch_tables(
        self, configs
    ) -> Optional[Dict[str, Tuple[np.ndarray, np.ndarray, int, int]]]:
        """Per-op gather tables for a configuration batch.

        Maps every slot's op name to ``(flat_lut, rows, width, mask)``
        as consumed by
        :meth:`~repro.accelerators.graph.GraphProgram.execute_batch`,
        with ``rows`` the ``(C,)`` gene column of the batch.  Returns
        ``None`` when any slot is too wide for exhaustive LUTs — those
        spaces keep the per-configuration ``evaluate()`` impls.
        """
        if not self.lut_capable():
            return None
        arr = self._as_matrix(configs)
        if np.any((arr < 0) | (arr >= self._sizes)):
            raise DSEError("configuration gene out of range")
        tables: Dict[str, Tuple[np.ndarray, np.ndarray, int, int]] = {}
        for k, slot in enumerate(self.slots):
            width = self.choices[k][0].width
            tables[slot.name] = (
                self.stacked_lut(k),
                np.ascontiguousarray(arr[:, k]),
                width,
                bit_mask(width),
            )
        return tables

    def exact_configuration(self) -> Configuration:
        """The configuration selecting an exact circuit in every slot."""
        genes = []
        for k, group in enumerate(self.choices):
            exact = [i for i, r in enumerate(group) if r.is_exact()]
            if not exact:
                raise DSEError(
                    f"slot {self.slots[k].name!r} has no exact candidate"
                )
            genes.append(exact[0])
        return tuple(genes)


def _make_impl(record: ComponentRecord) -> Callable:
    """LUT-gather implementation for narrow ops, evaluate() for wide ones."""
    width = record.width
    if width <= MAX_LUT_WIDTH:
        lut = record.lut()
        mask = bit_mask(width)

        def impl(a, b, _lut=lut, _m=mask, _w=width):
            return _lut[((a & _m) << _w) | (b & _m)]

        return impl
    circuit = record.circuit

    def impl(a, b, _c=circuit):
        return _c.evaluate(a, b)

    return impl
