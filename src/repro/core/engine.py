"""Batched evaluation engine — the fast *real* (reference) path.

The expensive step the estimation models amortise is the full analysis of
a configuration: simulating the accelerator over every (image, scenario)
run and synthesising the composed netlist.  The seed implementation
re-interpreted the dataflow graph per run and synthesised every
configuration from scratch; :class:`EvaluationEngine` makes the same
analysis fast and scalable in four layered steps:

1. **compile** — the accelerator graph is lowered once to a
   :class:`~repro.accelerators.graph.GraphProgram` (flat instruction
   list, resolved operand registers, precomputed masks);
2. **batch** — all (image x scenario) runs are stacked into one
   ``(runs, pixels)`` input batch, so a configuration's QoR needs a
   single vectorised pass instead of ``runs`` re-interpretations, and
   SSIM is scored by a :class:`~repro.imaging.metrics.BatchedSsim` whose
   golden-side window statistics are precomputed once;
3. **parallelise** — :meth:`evaluate_many` fans configuration chunks out
   to worker processes (the analyses are independent);
4. **memoise** — synthesis reports are cached by the configuration's
   component-record tuple, and duplicate configurations inside one batch
   are analysed once.

Numerical contract: QoR values match the per-run reference path to float
round-off (the SSIM math is identical; only the summation grouping
differs), and hardware reports are exactly those of
:func:`~repro.synthesis.synthesizer.synthesize`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.core.configuration import Configuration, ConfigurationSpace
from repro.core.runtime import (  # noqa: F401 - re-exported conventions
    WORKERS_ENV,
    default_workers,
    get_runtime,
    validate_workers,
)
from repro.imaging.metrics import BatchedSsim
from repro.library.component import ComponentRecord
from repro.synthesis.synthesizer import SynthesisReport, synthesize
from repro.telemetry import get_metrics, maybe_span


@dataclass(frozen=True)
class EvaluationResult:
    """Real QoR and hardware parameters of one configuration."""

    qor: float
    area: float
    delay: float
    power: float

    @property
    def energy(self) -> float:
        return self.power * self.delay


class EvaluationEngine:
    """Caches benchmark inputs and golden outputs; evaluates configurations.

    ``scenarios`` lists ``extra``-input dicts (kernel coefficient sets for
    the generic Gaussian filter); each image is simulated under every
    scenario and the QoR is the mean SSIM over all runs, following the
    paper's protocol (§3).

    ``workers`` sets the default process count of :meth:`evaluate_many`
    (overridable per call); ``None`` falls back to ``REPRO_WORKERS`` and
    then to in-process evaluation.

    ``synth_cache`` plugs a second-level synthesis cache behind the
    in-memory memo: any object with ``get(memo_key)`` /
    ``put(memo_key, report)`` (e.g.
    :class:`repro.store.synth_cache.StoreSynthCache`, which persists
    reports in the experiment store and shares them across processes
    and runs).  It must be fork-safe and picklable for parallel
    ``evaluate_many``.
    """

    def __init__(
        self,
        accelerator: ImageAccelerator,
        images: Sequence[np.ndarray],
        scenarios: Optional[Sequence[Dict[str, int]]] = None,
        workers: Optional[int] = None,
        synth_cache=None,
    ):
        if not images:
            raise ValueError("need at least one benchmark image")
        self.accelerator = accelerator
        self.images = [np.asarray(img) for img in images]
        self.scenarios: List[Optional[Dict[str, int]]] = (
            list(scenarios) if scenarios else [None]
        )
        self.workers = (
            validate_workers(workers)
            if workers is not None
            else default_workers()
        )
        self.synth_cache = synth_cache
        self._program = accelerator.graph.compile()
        self._synth_memo: Dict[Tuple[Tuple[str, str], ...],
                               SynthesisReport] = {}
        self.synth_hits = 0
        self.synth_store_hits = 0
        self.synth_misses = 0

        shapes = {img.shape for img in self.images}
        self._uniform = len(shapes) == 1
        if self._uniform:
            self._build_stacked()
        else:
            self._build_per_run()

    # -- construction helpers -------------------------------------------------

    def _build_stacked(self) -> None:
        """Stack all runs into one batch; precompute golden SSIM stats.

        The batch is 3-D broadcastable — ``(images, 1, pixels)`` pixel
        stacks against ``(1, scenarios, 1)`` extra columns — so resident
        memory is one copy of the pixel data however many scenarios run.
        """
        stacked = self.accelerator.stack_runs(self.images, self.scenarios)
        # Mask once at build; every execute then skips the input masking.
        for name, _, mask in self._program.inputs:
            stacked[name] = stacked[name] & mask
        self._inputs = stacked
        self._batch_shape = (
            len(self.images),
            len(self.scenarios),
            int(self.images[0].size),
        )
        n_runs = len(self.images) * len(self.scenarios)
        self._run_shape = (n_runs,) + self.images[0].shape
        golden = self._execute_stack(None)
        self._ssim = BatchedSsim(golden)

    def _build_per_run(self) -> None:
        """Heterogeneous image shapes: keep the per-run compiled path."""
        acc = self.accelerator
        self._runs: List[Tuple[Dict[str, np.ndarray], BatchedSsim]] = []
        for image in self.images:
            window = acc.window_inputs(image)
            for extra in self.scenarios:
                inputs = dict(window)
                merged = acc.extra_inputs()
                if extra:
                    merged.update(extra)
                for name, value in merged.items():
                    inputs[name] = np.int64(value)
                golden = self._program.execute(inputs).reshape(
                    (1,) + image.shape
                )
                self._runs.append((inputs, BatchedSsim(golden)))

    def _execute_stack(self, assignment) -> np.ndarray:
        """One vectorised pass over the whole run batch."""
        out = self._program.execute(
            self._inputs, assignment, assume_masked=True
        )
        return np.reshape(
            np.broadcast_to(out, self._batch_shape), self._run_shape
        )

    # -- basic queries --------------------------------------------------------

    @property
    def run_count(self) -> int:
        """Number of (image, scenario) simulation runs per evaluation."""
        if self._uniform:
            return self._run_shape[0]
        return len(self._runs)

    def synth_stats(self) -> Dict[str, int]:
        """This process's synthesis cache counters (for run manifests)."""
        return {
            "synth_hits": self.synth_hits,
            "synth_store_hits": self.synth_store_hits,
            "synth_misses": self.synth_misses,
        }

    # -- QoR ------------------------------------------------------------------

    def qor_per_run(self, assignment: Dict[str, object]) -> np.ndarray:
        """SSIM of every (image, scenario) run under ``assignment``."""
        if self._uniform:
            return np.asarray(self._ssim(self._execute_stack(assignment)))
        scores = []
        for inputs, ssim_ref in self._runs:
            out = self._program.execute(inputs, assignment).reshape(
                ssim_ref.shape
            )
            scores.append(float(ssim_ref(out)[0]))
        return np.asarray(scores)

    def qor(self, assignment: Dict[str, object]) -> float:
        """Mean SSIM of the approximate output against the golden output."""
        return float(np.mean(self.qor_per_run(assignment)))

    # -- hardware -------------------------------------------------------------

    @staticmethod
    def _memo_key(
        records: Dict[str, ComponentRecord]
    ) -> Tuple[Tuple[str, str], ...]:
        return tuple(
            (op, record.name) for op, record in sorted(records.items())
        )

    def hardware(
        self, records: Dict[str, ComponentRecord]
    ) -> SynthesisReport:
        """Compose and synthesise the accelerator with ``records``.

        Reports are memoised on the record tuple: after dead-gate sweeps
        many configurations share composed netlists, and repeated
        evaluations of the same configuration (training-set overlaps,
        Pareto re-analysis) skip synthesis entirely.  A miss then falls
        through to ``synth_cache`` (when plugged), whose hits are
        adopted into the memo and counted in ``synth_store_hits`` —
        ``synth_misses`` counts *actual* synthesis runs only.  The
        counters track this process only; parallel ``evaluate_many``
        merges the workers' memo entries back but not their counters.
        """
        key = self._memo_key(records)
        cached = self._synth_memo.get(key)
        if cached is not None:
            self.synth_hits += 1
            get_metrics().inc("engine.synth_hits")
            return cached
        if self.synth_cache is not None:
            cached = self.synth_cache.get(key)
            if cached is not None:
                self.synth_store_hits += 1
                get_metrics().inc("engine.synth_store_hits")
                self._synth_memo[key] = cached
                return cached
        self.synth_misses += 1
        get_metrics().inc("engine.synth_misses")
        netlist = self.accelerator.to_netlist(records)
        rep = synthesize(netlist, in_place=True)
        self._synth_memo[key] = rep
        if self.synth_cache is not None:
            self.synth_cache.put(key, rep)
        return rep

    # -- combined -------------------------------------------------------------

    def evaluate(
        self, space: ConfigurationSpace, config: Configuration
    ) -> EvaluationResult:
        """Full analysis of one configuration (simulation + synthesis)."""
        get_metrics().inc("engine.evaluations")
        impls = space.assignment_callables(config)
        quality = self.qor(impls)
        rep = self.hardware(space.records(config))
        return EvaluationResult(
            qor=quality, area=rep.area, delay=rep.delay, power=rep.power
        )

    def evaluate_many(
        self,
        space: ConfigurationSpace,
        configs: Sequence[Configuration],
        workers: Optional[int] = None,
    ) -> List[EvaluationResult]:
        """Full analysis of a batch of configurations.

        Duplicates are analysed once; with ``workers > 1`` the unique
        configurations are chunked across a process pool (each analysis
        is independent).
        """
        configs = [tuple(c) for c in configs]
        unique: Dict[Configuration, int] = {}
        for config in configs:
            if config not in unique:
                unique[config] = len(unique)
        ordered = list(unique)
        metrics = get_metrics()
        metrics.inc("engine.evaluate_batches")
        metrics.observe("engine.batch_size", len(configs))

        if workers is None:
            workers = self.workers
        else:
            workers = validate_workers(workers)
        with maybe_span(
            "engine.evaluate_many", cat="engine",
            args={"configs": len(configs), "unique": len(ordered)},
        ):
            if workers is None or workers <= 1 or len(ordered) < 2:
                results = [self.evaluate(space, c) for c in ordered]
            else:
                results = self._evaluate_parallel(
                    space, ordered, workers
                )
        return [results[unique[c]] for c in configs]

    def _evaluate_parallel(
        self,
        space: ConfigurationSpace,
        configs: List[Configuration],
        workers: int,
    ) -> List[EvaluationResult]:
        workers = min(workers, len(configs))
        # Contiguous chunks, a few per worker so stragglers even out.
        n_chunks = min(len(configs), workers * 4)
        chunks = [
            [configs[i] for i in part]
            for part in np.array_split(np.arange(len(configs)), n_chunks)
            if len(part)
        ]
        chunk_results = get_runtime().map(
            _evaluate_chunk,
            chunks,
            context=(self, space),
            workers=workers,
            label="evaluate_many",
        )
        flat: List[EvaluationResult] = []
        for part, memo_updates in chunk_results:
            flat.extend(part)
            # Adopt the workers' synthesis reports so later in-process
            # evaluations of the same configurations skip synthesis.
            for key, report in memo_updates.items():
                self._synth_memo.setdefault(key, report)
        return flat


def _evaluate_chunk(context, chunk: List[Configuration]):
    """Runtime task: analyse one chunk on the (shared) engine context."""
    engine, space = context
    known = set(engine._synth_memo)
    results = [engine.evaluate(space, config) for config in chunk]
    memo_updates = {
        key: report
        for key, report in engine._synth_memo.items()
        if key not in known
    }
    return results, memo_updates
