"""Batched evaluation engine — the fast *real* (reference) path.

The expensive step the estimation models amortise is the full analysis of
a configuration: simulating the accelerator over every (image, scenario)
run and synthesising the composed netlist.  The seed implementation
re-interpreted the dataflow graph per run and synthesised every
configuration from scratch; :class:`EvaluationEngine` makes the same
analysis fast and scalable in four layered steps:

1. **compile** — the accelerator graph is lowered once to a
   :class:`~repro.accelerators.graph.GraphProgram` (flat instruction
   list, resolved operand registers, precomputed masks);
2. **batch** — all (image x scenario) runs are stacked into one
   ``(runs, pixels)`` input batch, so a configuration's QoR needs a
   single vectorised pass instead of ``runs`` re-interpretations, and
   SSIM is scored by a :class:`~repro.imaging.metrics.BatchedSsim` whose
   golden-side window statistics are precomputed once;
3. **parallelise** — :meth:`evaluate_many` fans configuration chunks out
   to worker processes (the analyses are independent);
4. **memoise** — synthesis reports are cached by the configuration's
   component-record tuple, and duplicate configurations inside one batch
   are analysed once.

Numerical contract: QoR values match the per-run reference path to float
round-off (the SSIM math is identical; only the summation grouping
differs), and hardware reports are exactly those of
:func:`~repro.synthesis.synthesizer.synthesize`.
"""

from __future__ import annotations

import os
import time
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.core.configuration import Configuration, ConfigurationSpace
from repro.core.runtime import (  # noqa: F401 - re-exported conventions
    WORKERS_ENV,
    default_workers,
    get_runtime,
    validate_workers,
)
from repro.imaging.metrics import BatchedSsim
from repro.library.component import ComponentRecord
from repro.synthesis.synthesizer import SynthesisReport, synthesize
from repro.telemetry import get_metrics, maybe_span

#: Environment knob: tile size on the configuration axis of the batched
#: pass (default: auto-derived from array bytes, see ``config_tile``).
CONFIG_TILE_ENV = "REPRO_CONFIG_TILE"

#: Environment knob: set to 1 to disable the configuration-axis batched
#: pass and keep the classic per-configuration loop.
NO_CONFIG_BATCH_ENV = "REPRO_NO_CONFIG_BATCH"

#: Peak working-set budget of one configuration tile.  One config's
#: pass holds a few live int64 register batches plus the float64 SSIM
#: temporaries; the auto tile keeps ``tile * per_config_bytes`` under
#: this bound so peak RSS stays flat however many configs a generation
#: carries.
_CONFIG_TILE_BUDGET_BYTES = 256 * 1024 * 1024

#: Estimated live arrays per configuration inside the tiled pass
#: (int64 register batch + reshaped output + SSIM blur temporaries).
_ARRAYS_PER_CONFIG = 12

#: Conservative predicted speedup of the vectorized simulation pass
#: over the per-configuration loop, fed to the runtime cost model (the
#: measured win on the benchmark workload is larger; underestimating
#: only makes the model pick vectorized less eagerly).
_VECTORIZED_GAIN = 3.0


@dataclass(frozen=True)
class EvaluationResult:
    """Real QoR and hardware parameters of one configuration."""

    qor: float
    area: float
    delay: float
    power: float

    @property
    def energy(self) -> float:
        return self.power * self.delay


class EvaluationEngine:
    """Caches benchmark inputs and golden outputs; evaluates configurations.

    ``scenarios`` lists ``extra``-input dicts (kernel coefficient sets for
    the generic Gaussian filter); each image is simulated under every
    scenario and the QoR is the mean SSIM over all runs, following the
    paper's protocol (§3).

    ``workers`` sets the default process count of :meth:`evaluate_many`
    (overridable per call); ``None`` falls back to ``REPRO_WORKERS`` and
    then to in-process evaluation.

    ``synth_cache`` plugs a second-level synthesis cache behind the
    in-memory memo: any object with ``get(memo_key)`` /
    ``put(memo_key, report)`` (e.g.
    :class:`repro.store.synth_cache.StoreSynthCache`, which persists
    reports in the experiment store and shares them across processes
    and runs).  It must be fork-safe and picklable for parallel
    ``evaluate_many``.
    """

    def __init__(
        self,
        accelerator: ImageAccelerator,
        images: Sequence[np.ndarray],
        scenarios: Optional[Sequence[Dict[str, int]]] = None,
        workers: Optional[int] = None,
        synth_cache=None,
    ):
        if not images:
            raise ValueError("need at least one benchmark image")
        self.accelerator = accelerator
        self.images = [np.asarray(img) for img in images]
        self.scenarios: List[Optional[Dict[str, int]]] = (
            list(scenarios) if scenarios else [None]
        )
        self.workers = (
            validate_workers(workers)
            if workers is not None
            else default_workers()
        )
        self.synth_cache = synth_cache
        self._program = accelerator.graph.compile()
        self._synth_memo: Dict[Tuple[Tuple[str, str], ...],
                               SynthesisReport] = {}
        self.synth_hits = 0
        self.synth_store_hits = 0
        self.synth_misses = 0
        # Last measured per-config simulation seconds, keyed (weakly)
        # by the space it was probed on: repeat evaluate_many calls on
        # the same space — the search-loop steady state — skip the
        # per-config probe and batch *every* configuration.
        self._probe_sim: Optional[Tuple[weakref.ref, float]] = None

        shapes = {img.shape for img in self.images}
        self._uniform = len(shapes) == 1
        if self._uniform:
            self._build_stacked()
        else:
            self._build_per_run()

    def __getstate__(self):
        # Weak references do not pickle; workers re-probe on first use.
        state = self.__dict__.copy()
        state["_probe_sim"] = None
        return state

    # -- construction helpers -------------------------------------------------

    def _build_stacked(self) -> None:
        """Stack all runs into one batch; precompute golden SSIM stats.

        The batch is 3-D broadcastable — ``(images, 1, pixels)`` pixel
        stacks against ``(1, scenarios, 1)`` extra columns — so resident
        memory is one copy of the pixel data however many scenarios run.
        """
        stacked = self.accelerator.stack_runs(self.images, self.scenarios)
        # Mask once at build; every execute then skips the input masking.
        for name, _, mask in self._program.inputs:
            stacked[name] = stacked[name] & mask
        self._inputs = stacked
        self._batch_shape = (
            len(self.images),
            len(self.scenarios),
            int(self.images[0].size),
        )
        n_runs = len(self.images) * len(self.scenarios)
        self._run_shape = (n_runs,) + self.images[0].shape
        golden = self._execute_stack(None)
        self._ssim = BatchedSsim(golden)

    def _build_per_run(self) -> None:
        """Heterogeneous image shapes: keep the per-run compiled path."""
        acc = self.accelerator
        self._runs: List[Tuple[Dict[str, np.ndarray], BatchedSsim]] = []
        for image in self.images:
            window = acc.window_inputs(image)
            for extra in self.scenarios:
                inputs = dict(window)
                merged = acc.extra_inputs()
                if extra:
                    merged.update(extra)
                for name, value in merged.items():
                    inputs[name] = np.int64(value)
                golden = self._program.execute(inputs).reshape(
                    (1,) + image.shape
                )
                self._runs.append((inputs, BatchedSsim(golden)))

    def _execute_stack(self, assignment) -> np.ndarray:
        """One vectorised pass over the whole run batch."""
        out = self._program.execute(
            self._inputs, assignment, assume_masked=True
        )
        return np.reshape(
            np.broadcast_to(out, self._batch_shape), self._run_shape
        )

    # -- basic queries --------------------------------------------------------

    @property
    def run_count(self) -> int:
        """Number of (image, scenario) simulation runs per evaluation."""
        if self._uniform:
            return self._run_shape[0]
        return len(self._runs)

    def synth_stats(self) -> Dict[str, int]:
        """This process's synthesis cache counters (for run manifests)."""
        return {
            "synth_hits": self.synth_hits,
            "synth_store_hits": self.synth_store_hits,
            "synth_misses": self.synth_misses,
        }

    # -- QoR ------------------------------------------------------------------

    def qor_per_run(self, assignment: Dict[str, object]) -> np.ndarray:
        """SSIM of every (image, scenario) run under ``assignment``."""
        if self._uniform:
            return np.asarray(self._ssim(self._execute_stack(assignment)))
        scores = []
        for inputs, ssim_ref in self._runs:
            out = self._program.execute(inputs, assignment).reshape(
                ssim_ref.shape
            )
            scores.append(float(ssim_ref(out)[0]))
        return np.asarray(scores)

    def qor(self, assignment: Dict[str, object]) -> float:
        """Mean SSIM of the approximate output against the golden output."""
        return float(np.mean(self.qor_per_run(assignment)))

    # -- hardware -------------------------------------------------------------

    @staticmethod
    def _memo_key(
        records: Dict[str, ComponentRecord]
    ) -> Tuple[Tuple[str, str], ...]:
        return tuple(
            (op, record.name) for op, record in sorted(records.items())
        )

    def hardware(
        self, records: Dict[str, ComponentRecord]
    ) -> SynthesisReport:
        """Compose and synthesise the accelerator with ``records``.

        Reports are memoised on the record tuple: after dead-gate sweeps
        many configurations share composed netlists, and repeated
        evaluations of the same configuration (training-set overlaps,
        Pareto re-analysis) skip synthesis entirely.  A miss then falls
        through to ``synth_cache`` (when plugged), whose hits are
        adopted into the memo and counted in ``synth_store_hits`` —
        ``synth_misses`` counts *actual* synthesis runs only.  The
        counters track this process only; parallel ``evaluate_many``
        merges the workers' memo entries back but not their counters.
        """
        key = self._memo_key(records)
        cached = self._synth_memo.get(key)
        if cached is not None:
            self.synth_hits += 1
            get_metrics().inc("engine.synth_hits")
            return cached
        if self.synth_cache is not None:
            cached = self.synth_cache.get(key)
            if cached is not None:
                self.synth_store_hits += 1
                get_metrics().inc("engine.synth_store_hits")
                self._synth_memo[key] = cached
                return cached
        self.synth_misses += 1
        get_metrics().inc("engine.synth_misses")
        netlist = self.accelerator.to_netlist(records)
        rep = synthesize(netlist, in_place=True)
        self._synth_memo[key] = rep
        if self.synth_cache is not None:
            self.synth_cache.put(key, rep)
        return rep

    # -- combined -------------------------------------------------------------

    def evaluate(
        self, space: ConfigurationSpace, config: Configuration
    ) -> EvaluationResult:
        """Full analysis of one configuration (simulation + synthesis)."""
        get_metrics().inc("engine.evaluations")
        impls = space.assignment_callables(config)
        quality = self.qor(impls)
        rep = self.hardware(space.records(config))
        return EvaluationResult(
            qor=quality, area=rep.area, delay=rep.delay, power=rep.power
        )

    def evaluate_many(
        self,
        space: ConfigurationSpace,
        configs: Sequence[Configuration],
        workers: Optional[int] = None,
    ) -> List[EvaluationResult]:
        """Full analysis of a batch of configurations.

        Duplicates are analysed once.  When every slot of ``space`` is
        LUT-capable the unique configurations are simulated in one
        configuration-axis batched pass (see
        :meth:`~repro.accelerators.graph.GraphProgram.execute_batch`),
        tiled on the config axis to bound peak memory; synthesis stays
        per-configuration behind the memo.  The runtime cost model
        picks between that vectorized pass, chunking across the process
        pool (``workers > 1``) and the plain serial loop — all three
        produce bit-identical results.  ``REPRO_NO_CONFIG_BATCH=1``
        forces the classic loop, as do capture-style per-run engines
        (heterogeneous image shapes) and non-LUT implementations.
        """
        configs = [tuple(c) for c in configs]
        unique: Dict[Configuration, int] = {}
        for config in configs:
            if config not in unique:
                unique[config] = len(unique)
        ordered = list(unique)
        metrics = get_metrics()
        metrics.inc("engine.evaluate_batches")
        metrics.observe("engine.batch_size", len(configs))

        if workers is None:
            workers = self.workers
        else:
            workers = validate_workers(workers)
        with maybe_span(
            "engine.evaluate_many", cat="engine",
            args={"configs": len(configs), "unique": len(ordered)},
        ):
            results = self._evaluate_unique(space, ordered, workers)
        return [results[unique[c]] for c in configs]

    def _evaluate_unique(
        self,
        space: ConfigurationSpace,
        ordered: List[Configuration],
        workers: Optional[int],
    ) -> List[EvaluationResult]:
        tables = self._batch_tables(space, ordered)
        if tables is None or len(ordered) < 2:
            # Classic path: plain loop or pool, gated as before.
            if workers is None or workers <= 1 or len(ordered) < 2:
                return [self.evaluate(space, c) for c in ordered]
            return self._evaluate_parallel(space, ordered, workers)

        runtime = get_runtime()
        cached_sim = None
        if self._probe_sim is not None and self._probe_sim[0]() is space:
            cached_sim = self._probe_sim[1]

        if cached_sim is not None:
            # Warm engine: the simulation cost was measured by an
            # earlier probe on this space, so no configuration needs
            # the per-config path — synthesis of the first config is
            # timed (it is needed in every mode and usually a memo
            # hit) and the whole batch rides the chosen mode.
            start = time.perf_counter()
            self.hardware(space.records(ordered[0]))
            synth_seconds = time.perf_counter() - start
            est_vectorized = len(ordered) * (
                synth_seconds + cached_sim / _VECTORIZED_GAIN
            )
            decision = runtime.decide(
                "evaluate_many",
                n_tasks=len(ordered),
                workers=workers,
                probe_seconds=cached_sim + synth_seconds,
                vectorized_seconds=est_vectorized,
                context=(self, space),
            )
            if decision.mode == "vectorized":
                return self._evaluate_vectorized(space, ordered, tables)
            if decision.mode == "parallel":
                return self._evaluate_parallel(
                    space, ordered, workers,
                    probe_seconds=cached_sim + synth_seconds,
                )
            return [self.evaluate(space, c) for c in ordered]

        # Probe the first configuration per-config, split-timing the
        # simulation and synthesis halves: synthesis stays serial under
        # the vectorized pass, only the simulation half is amortised.
        start = time.perf_counter()
        impls = space.assignment_callables(ordered[0])
        quality = self.qor(impls)
        sim_seconds = time.perf_counter() - start
        start = time.perf_counter()
        rep = self.hardware(space.records(ordered[0]))
        synth_seconds = time.perf_counter() - start
        get_metrics().inc("engine.evaluations")
        self._probe_sim = (weakref.ref(space), sim_seconds)
        first = EvaluationResult(
            qor=quality, area=rep.area, delay=rep.delay, power=rep.power
        )
        rest = ordered[1:]
        est_vectorized = len(rest) * (
            synth_seconds + sim_seconds / _VECTORIZED_GAIN
        )
        decision = runtime.decide(
            "evaluate_many",
            n_tasks=len(ordered),
            workers=workers,
            probe_seconds=sim_seconds + synth_seconds,
            vectorized_seconds=est_vectorized,
            context=(self, space),
        )
        if decision.mode == "vectorized":
            return [first] + self._evaluate_vectorized(
                space, rest, self._slice_tables(tables, 1)
            )
        if decision.mode == "parallel":
            # The pre-probe already measured this batch: skip the
            # pool's own in-process probe so the parent pays exactly
            # one synthesis per cold batch.
            return [first] + self._evaluate_parallel(
                space, rest, workers,
                probe_seconds=sim_seconds + synth_seconds,
            )
        return [first] + [self.evaluate(space, c) for c in rest]

    # -- configuration-axis batched path --------------------------------------

    def _batch_tables(self, space: ConfigurationSpace, configs):
        """Per-op gather tables in program order, or ``None`` to fall back.

        ``None`` (classic per-config loop) for per-run engines
        (heterogeneous image shapes), under ``REPRO_NO_CONFIG_BATCH``,
        and for spaces with non-LUT (wide) implementations.
        """
        if not self._uniform or not configs:
            return None
        if os.environ.get(NO_CONFIG_BATCH_ENV, "").strip() not in (
            "", "0", "false",
        ):
            return None
        by_op = space.batch_tables(configs)
        if by_op is None:
            return None
        return [by_op.get(name) for name in self._program.op_names]

    @staticmethod
    def _slice_tables(tables, start: int, stop: Optional[int] = None):
        """Restrict every table's config rows to ``[start:stop]``."""
        return [
            entry
            if entry is None
            else (entry[0], entry[1][start:stop], entry[2], entry[3])
            for entry in tables
        ]

    def config_tile(self, n_configs: int) -> int:
        """Tile size on the config axis (``REPRO_CONFIG_TILE`` or auto).

        The auto tile bounds the live working set —
        ``tile * run_elements * 8 bytes * ~12 arrays`` — to ~256 MiB,
        so batching 128 configurations does not cost 128x the memory of
        one.  Tiling only changes how many configs share one pass;
        every tile size produces byte-identical results.
        """
        raw = os.environ.get(CONFIG_TILE_ENV)
        if raw is not None:
            from repro.utils.validation import check_env_int

            return min(
                check_env_int(raw, CONFIG_TILE_ENV, minimum=1),
                max(n_configs, 1),
            )
        elements = 1
        for dim in self._run_shape:
            elements *= int(dim)
        per_config = max(elements * 8 * _ARRAYS_PER_CONFIG, 1)
        tile = max(1, _CONFIG_TILE_BUDGET_BYTES // per_config)
        return min(tile, max(n_configs, 1))

    def qor_batch(self, tables, n_configs: int) -> np.ndarray:
        """Mean SSIM of ``n_configs`` configurations in tiled passes.

        Entry ``c`` equals ``qor(assignment_c)`` bit-for-bit: the
        batched program pass gathers the same LUT entries, the
        config-axis SSIM runs the same Gaussian windows and ufunc
        chain, and the per-config mean reduces the same contiguous
        per-run score rows.
        """
        metrics = get_metrics()
        metrics.inc("engine.config_batches")
        tile = self.config_tile(n_configs)
        scores = np.empty(n_configs, dtype=np.float64)
        for lo in range(0, n_configs, tile):
            hi = min(lo + tile, n_configs)
            part = self._slice_tables(tables, lo, hi)
            raw = self._program.execute_batch(
                self._inputs, part, assume_masked=True
            )
            n = hi - lo
            shaped = np.reshape(
                np.broadcast_to(raw, (n,) + self._batch_shape),
                (n,) + self._run_shape,
            )
            scores[lo:hi] = self._ssim.batch(shaped).mean(axis=1)
            metrics.observe("engine.config_tile", n)
        return scores

    def _evaluate_vectorized(
        self,
        space: ConfigurationSpace,
        configs: List[Configuration],
        tables,
    ) -> List[EvaluationResult]:
        """Batched simulation + per-config (memoised) synthesis."""
        qors = self.qor_batch(tables, len(configs))
        metrics = get_metrics()
        results = []
        for config, quality in zip(configs, qors):
            metrics.inc("engine.evaluations")
            rep = self.hardware(space.records(config))
            results.append(
                EvaluationResult(
                    qor=float(quality),
                    area=rep.area,
                    delay=rep.delay,
                    power=rep.power,
                )
            )
        return results

    def _evaluate_parallel(
        self,
        space: ConfigurationSpace,
        configs: List[Configuration],
        workers: int,
        probe_seconds: Optional[float] = None,
    ) -> List[EvaluationResult]:
        workers = min(workers, len(configs))
        # Contiguous chunks, a few per worker so stragglers even out.
        n_chunks = min(len(configs), workers * 4)
        chunks = [
            [configs[i] for i in part]
            for part in np.array_split(np.arange(len(configs)), n_chunks)
            if len(part)
        ]
        chunk_results = get_runtime().map(
            _evaluate_chunk,
            chunks,
            context=(self, space),
            workers=workers,
            label="evaluate_many",
            # Per-config pre-probe (when the caller ran one), scaled to
            # the runtime's per-task unit: one chunk.
            probe_seconds=(
                None
                if probe_seconds is None
                else probe_seconds * len(chunks[0])
            ),
        )
        flat: List[EvaluationResult] = []
        for part, memo_updates in chunk_results:
            flat.extend(part)
            # Adopt the workers' synthesis reports so later in-process
            # evaluations of the same configurations skip synthesis.
            for key, report in memo_updates.items():
                self._synth_memo.setdefault(key, report)
        return flat


def _evaluate_chunk(context, chunk: List[Configuration]):
    """Runtime task: analyse one chunk on the (shared) engine context."""
    engine, space = context
    known = set(engine._synth_memo)
    results = [engine.evaluate(space, config) for config in chunk]
    memo_updates = {
        key: report
        for key, report in engine._synth_memo.items()
        if key not in known
    }
    return results, memo_updates
