"""Step 1 — library pre-processing (paper §2.2, §4.1.1).

For every operation of the accelerator, the initial library is scored by
WMED under the profiled operand distribution and filtered down to the
circuits on the (WMED, area) Pareto front.  The result is the reduced
configuration space RL_1 x ... x RL_n the rest of the methodology works
in.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.accelerators.profiler import OperandProfile
from repro.core.configuration import ConfigurationSpace
from repro.core.pareto import pareto_front_indices
from repro.core.wmed import wmed_table
from repro.errors import LibraryError
from repro.library.library import ComponentLibrary


def pareto_filter_indices(
    scores: np.ndarray, costs: np.ndarray
) -> np.ndarray:
    """Indices on the (score, cost) minimisation Pareto front, sorted."""
    scores = np.asarray(scores, dtype=float)
    costs = np.asarray(costs, dtype=float)
    if scores.shape != costs.shape or scores.ndim != 1:
        raise ValueError("scores and costs must be equal-length vectors")
    points = np.stack([scores, costs], axis=1)
    return pareto_front_indices(points)


def _cap_front(
    order: np.ndarray, scores: np.ndarray, cap: int
) -> np.ndarray:
    """Thin a front to at most ``cap`` members, keeping the extremes."""
    if order.size <= cap:
        return order
    by_score = order[np.argsort(scores[order])]
    picks = np.linspace(0, by_score.size - 1, cap).round().astype(int)
    return by_score[np.unique(picks)]


def reduce_library(
    accelerator: ImageAccelerator,
    library: ComponentLibrary,
    profiles: Dict[str, OperandProfile],
    per_op_cap: Optional[int] = None,
    keep_exact: bool = True,
) -> ConfigurationSpace:
    """Build the reduced configuration space for ``accelerator``.

    ``per_op_cap`` optionally thins each per-operation front (used by the
    Table 4 benchmark, where the reference front must stay enumerable).
    ``keep_exact`` force-keeps one exact implementation per operation so
    the accurate accelerator stays reachable.
    """
    slots = accelerator.op_slots()
    choices = []
    wmeds = []
    for slot in slots:
        if slot.name not in profiles:
            raise LibraryError(f"no operand profile for op {slot.name!r}")
        candidates = library.components(slot.signature)
        if not candidates:
            raise LibraryError(
                f"library has no components for {slot.signature}"
            )
        scores = wmed_table(candidates, profiles[slot.name])
        areas = np.asarray(
            [r.hardware.area for r in candidates], dtype=float
        )
        front = pareto_filter_indices(scores, areas)
        if per_op_cap is not None:
            front = _cap_front(front, scores, per_op_cap)
        selected = set(front.tolist())
        if keep_exact:
            exact_ids = [
                i for i, r in enumerate(candidates) if r.is_exact()
            ]
            if exact_ids and not any(i in selected for i in exact_ids):
                cheapest = min(
                    exact_ids, key=lambda i: candidates[i].hardware.area
                )
                selected.add(cheapest)
        chosen = sorted(selected)
        choices.append([candidates[i] for i in chosen])
        wmeds.append(scores[chosen])
    return ConfigurationSpace(slots, choices, wmeds)
