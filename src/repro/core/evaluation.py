"""Real (reference) evaluation of configurations — simulation + synthesis.

This is the expensive path the estimation models replace during search:
QoR is measured by running the accelerator's software model over benchmark
images and averaging SSIM against the accurate output, and hardware cost
by composing the component netlists and synthesising the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.core.configuration import Configuration, ConfigurationSpace
from repro.imaging.metrics import ssim
from repro.synthesis.synthesizer import SynthesisReport, synthesize


@dataclass(frozen=True)
class EvaluationResult:
    """Real QoR and hardware parameters of one configuration."""

    qor: float
    area: float
    delay: float
    power: float

    @property
    def energy(self) -> float:
        return self.power * self.delay


class AcceleratorEvaluator:
    """Caches benchmark inputs and golden outputs; evaluates configurations.

    ``scenarios`` lists ``extra``-input dicts (kernel coefficient sets for
    the generic Gaussian filter); each image is simulated under every
    scenario and the QoR is the mean SSIM over all runs, following the
    paper's protocol (§3).
    """

    def __init__(
        self,
        accelerator: ImageAccelerator,
        images: Sequence[np.ndarray],
        scenarios: Optional[Sequence[Dict[str, int]]] = None,
    ):
        if not images:
            raise ValueError("need at least one benchmark image")
        self.accelerator = accelerator
        self.images = [np.asarray(img) for img in images]
        self.scenarios: List[Optional[Dict[str, int]]] = (
            list(scenarios) if scenarios else [None]
        )
        self._runs: List[Tuple[Dict[str, np.ndarray], np.ndarray]] = []
        for image in self.images:
            window = accelerator.window_inputs(image)
            for extra in self.scenarios:
                inputs = dict(window)
                merged = accelerator.extra_inputs()
                if extra:
                    merged.update(extra)
                for name, value in merged.items():
                    inputs[name] = np.int64(value)
                golden = accelerator.graph.evaluate(inputs).reshape(
                    image.shape
                )
                self._runs.append((inputs, golden))

    @property
    def run_count(self) -> int:
        """Number of (image, scenario) simulation runs per evaluation."""
        return len(self._runs)

    # -- QoR ------------------------------------------------------------------

    def qor(self, assignment: Dict[str, object]) -> float:
        """Mean SSIM of the approximate output against the golden output."""
        total = 0.0
        for inputs, golden in self._runs:
            out = self.accelerator.graph.evaluate(
                inputs, assignment
            ).reshape(golden.shape)
            total += ssim(golden.astype(float), out.astype(float))
        return total / len(self._runs)

    # -- hardware ------------------------------------------------------------

    def hardware(
        self, records: Dict[str, object]
    ) -> SynthesisReport:
        """Compose and synthesise the accelerator with ``records``."""
        netlist = self.accelerator.to_netlist(records)
        return synthesize(netlist)

    # -- combined ------------------------------------------------------------

    def evaluate(
        self, space: ConfigurationSpace, config: Configuration
    ) -> EvaluationResult:
        """Full analysis of one configuration (simulation + synthesis)."""
        impls = space.assignment_callables(config)
        quality = self.qor(impls)
        rep = self.hardware(space.records(config))
        return EvaluationResult(
            qor=quality, area=rep.area, delay=rep.delay, power=rep.power
        )

    def evaluate_many(
        self,
        space: ConfigurationSpace,
        configs: Sequence[Configuration],
    ) -> List[EvaluationResult]:
        """Full analysis of a batch of configurations."""
        return [self.evaluate(space, c) for c in configs]
