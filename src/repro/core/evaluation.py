"""Real (reference) evaluation of configurations — simulation + synthesis.

This is the expensive path the estimation models replace during search:
QoR is measured by running the accelerator's software model over benchmark
images and averaging SSIM against the accurate output, and hardware cost
by composing the component netlists and synthesising the result.

The implementation lives in :mod:`repro.core.engine`:
:class:`AcceleratorEvaluator` is the historical name of (and a drop-in
alias for) :class:`~repro.core.engine.EvaluationEngine`, which compiles
the accelerator graph, batches all (image x scenario) runs into one
vectorised pass, memoises synthesis, and analyses whole configuration
batches in one configuration-axis compiled pass (``evaluate_many``
stacks the per-config LUTs and lets the runtime cost model pick between
that vectorized pass, a process pool, and the serial loop — all
bit-identical).
"""

from __future__ import annotations

from repro.core.engine import EvaluationEngine, EvaluationResult

__all__ = ["AcceleratorEvaluator", "EvaluationResult"]


class AcceleratorEvaluator(EvaluationEngine):
    """Backward-compatible alias of :class:`EvaluationEngine`.

    Kept so existing imports, fixtures and pickles keep working; new code
    should construct :class:`EvaluationEngine` directly (e.g. via
    :func:`repro.experiments.setup.build_engine`).
    """
