"""End-to-end autoAx pipeline (paper Fig. 1) with resumable stages.

``AutoAx.run()`` executes the three methodology steps against one
accelerator + library + benchmark-data triple and returns everything the
paper reports: design-space sizes after each step (Table 5), the chosen
estimation models with their fidelities (Table 3), the pseudo Pareto set,
and the final real-evaluated Pareto fronts in (SSIM, area) and
(SSIM, area, energy) space (Fig. 5).

When constructed with an :class:`~repro.store.ArtifactStore`, the run
decomposes into five cache-aware stages —

    preprocessing  -> training_set -> model_construction
                   -> pseudo_pareto -> final_analysis

— each keyed by the content hash of its exact inputs (accelerator
dataflow graph, library fingerprint, benchmark images, stage
parameters, upstream artifact keys).  A stage whose key is already in
the store is *skipped*: its artifact is decoded instead of recomputed,
so a repeated run with a warm store performs no profiling, no synthesis,
no model fitting and no DSE.  Each stage draws from its own seeded RNG
stream (derived from ``config.seed``), so a resumed run that skips some
stages produces bit-identical downstream results to a cold run.  Every
invocation is recorded in the :class:`~repro.store.RunLedger` as a
manifest (params, config hash, per-stage timing and cache outcome,
artifact refs) — the basis of ``repro runs list|show|resume|gc``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.accelerators.profiler import OperandProfile, profile_accelerator
from repro.core.configuration import (
    HW_FEATURES,
    Configuration,
    ConfigurationSpace,
)
from repro.core.dse import DSEResult, heuristic_pareto_construction
from repro.core.engine import EvaluationEngine, EvaluationResult
from repro.core.modeling import (
    EngineReport,
    TrainingSet,
    build_training_set,
    fit_count,
    fit_engines,
    reports_from_payload,
    reports_to_payload,
    select_best_model,
)
from repro.core.pareto import pareto_front_indices
from repro.core.preprocessing import reduce_library
from repro.library.component import ComponentRecord
from repro.library.library import ComponentLibrary
from repro.telemetry import complete_event, get_metrics
from repro.utils.rng import spawn_rngs

#: Ledger stage names, in execution order.  The heavy stages a warm
#: store is expected to skip entirely.
PIPELINE_STAGES = (
    "preprocessing",
    "training_set",
    "model_construction",
    "pseudo_pareto",
    "final_analysis",
)


@dataclass(frozen=True)
class AutoAxConfig:
    """Tunables of the pipeline; defaults are laptop-scale."""

    n_train: int = 400
    n_test: int = 200
    engines: Tuple[str, ...] = ("Random Forest",)
    include_naive: bool = True
    hw_features: Tuple[str, ...] = HW_FEATURES
    max_evaluations: int = 20_000
    stagnation_limit: int = 50
    per_op_cap: Optional[int] = None
    max_samples: int = 1 << 16
    seed: int = 0
    #: worker processes for real evaluation (None: REPRO_WORKERS / serial)
    workers: Optional[int] = None

    def __post_init__(self):
        if self.n_train < 2 or self.n_test < 2:
            raise ValueError("need at least two train and test samples")
        if not self.engines:
            raise ValueError("at least one learning engine is required")

    def cache_payload(self) -> Dict[str, object]:
        """The hashable identity of this config.

        ``workers`` is excluded: parallelism changes wall time, never
        results, so it must not fragment the cache.
        """
        payload = asdict(self)
        payload.pop("workers", None)
        payload["engines"] = list(self.engines)
        payload["hw_features"] = list(self.hw_features)
        return payload


@dataclass
class AutoAxResult:
    """Everything produced by one pipeline run."""

    space: ConfigurationSpace
    profiles: Dict[str, OperandProfile]
    initial_space_size: float
    reduced_space_size: float
    qor_reports: List[EngineReport]
    hw_reports: List[EngineReport]
    qor_model: EngineReport
    hw_model: EngineReport
    pseudo_pareto: DSEResult
    real_evaluations: List[EvaluationResult]
    final_configs: List[Configuration]
    final_points: np.ndarray  # columns: qor (ssim), area
    final_configs_3d: List[Configuration]
    final_points_3d: np.ndarray  # columns: qor, area, energy
    timings: Dict[str, float] = field(default_factory=dict)
    #: stage name -> "hit" / "miss" / "off" (no store attached)
    stage_cache: Dict[str, str] = field(default_factory=dict)
    #: ledger id of this invocation (None without a ledger)
    run_id: Optional[str] = None
    #: synthesis/fit counters of this run (zeros when fully cached)
    engine_stats: Dict[str, object] = field(default_factory=dict)

    def summary_row(self) -> Dict[str, float]:
        """The Table 5 row of this run."""
        return {
            "all_possible": self.initial_space_size,
            "after_preprocessing": self.reduced_space_size,
            "pseudo_pareto": float(len(self.pseudo_pareto)),
            "final_pareto": float(len(self.final_configs)),
        }


class AutoAx:
    """The autoAx methodology bound to one accelerator instance.

    ``store`` enables persistent stage caching; ``ledger`` (defaulting
    to one at the store root) records the run manifest.  ``run_kind``,
    ``run_label`` and ``run_params`` annotate the manifest so ``repro
    runs resume`` can re-execute the invocation.
    """

    def __init__(
        self,
        accelerator: ImageAccelerator,
        library: ComponentLibrary,
        images: Sequence[np.ndarray],
        scenarios: Optional[Sequence[Dict[str, int]]] = None,
        config: AutoAxConfig = AutoAxConfig(),
        store=None,
        ledger=None,
        run_kind: str = "autoax",
        run_label: Optional[str] = None,
        run_params: Optional[Dict] = None,
    ):
        self.accelerator = accelerator
        self.library = library
        self.images = list(images)
        self.scenarios = scenarios
        self.config = config
        self.store = store
        if ledger is None and store is not None:
            from repro.store import RunLedger

            ledger = RunLedger(store)
        self.ledger = ledger
        self.run_kind = run_kind
        self.run_label = run_label or accelerator.name
        self.run_params = dict(run_params or {})
        self._engine: Optional[EvaluationEngine] = None
        self._acc_hash: Optional[str] = None

    # -- individual steps ---------------------------------------------------

    def profile(self) -> Dict[str, OperandProfile]:
        """Step 1a: operand PMFs of every replaceable operation."""
        return profile_accelerator(
            self.accelerator,
            self.images,
            scenarios=self.scenarios,
            max_samples=self.config.max_samples,
            rng=self.config.seed,
        )

    def reduce(
        self, profiles: Dict[str, OperandProfile]
    ) -> ConfigurationSpace:
        """Step 1b: WMED scoring + per-operation Pareto filtering."""
        return reduce_library(
            self.accelerator,
            self.library,
            profiles,
            per_op_cap=self.config.per_op_cap,
        )

    def initial_space_size(self) -> float:
        """|library(op_1)| * ... * |library(op_n)| before filtering."""
        total = 1.0
        for slot in self.accelerator.op_slots():
            total *= self.library.size(slot.signature)
        return total

    # -- engine (lazy: a fully cached run never builds it) ------------------

    def engine(self) -> EvaluationEngine:
        """The real-evaluation engine, built on first use.

        Construction simulates the golden outputs, so a warm run that
        skips every evaluation stage also skips this cost.  With a store
        attached, the engine's synthesis memo is backed by a
        store-persistent cache scoped to this accelerator.
        """
        if self._engine is None:
            synth_cache = None
            if self.store is not None:
                from repro.store import synth_cache_for

                synth_cache = synth_cache_for(
                    self.store, self._accelerator_hash()
                )
            self._engine = EvaluationEngine(
                self.accelerator,
                self.images,
                self.scenarios,
                workers=self.config.workers,
                synth_cache=synth_cache,
            )
        return self._engine

    def _accelerator_hash(self) -> str:
        if self._acc_hash is None:
            from repro.store import accelerator_fingerprint, content_hash

            self._acc_hash = content_hash(
                accelerator_fingerprint(self.accelerator)
            )
        return self._acc_hash

    # -- stage payloads -----------------------------------------------------

    def _space_payload(self, space: ConfigurationSpace) -> Dict:
        return {
            "slots": [
                [slot.name, slot.signature[0], slot.signature[1]]
                for slot in space.slots
            ],
            "choices": [
                [record.to_dict() for record in group]
                for group in space.choices
            ],
            "wmeds": [w.tolist() for w in space.wmeds],
        }

    def _space_from_payload(
        self, payload: Dict
    ) -> Optional[ConfigurationSpace]:
        """Rebuild the reduced space; ``None`` if it no longer matches."""
        slots = self.accelerator.op_slots()
        recorded = [
            (name, (kind, width))
            for name, kind, width in payload.get("slots", [])
        ]
        if [(s.name, s.signature) for s in slots] != recorded:
            return None
        choices = [
            [ComponentRecord.from_dict(d) for d in group]
            for group in payload["choices"]
        ]
        return ConfigurationSpace(slots, choices, payload["wmeds"])

    @staticmethod
    def _training_payload(ts: TrainingSet) -> Dict:
        return {
            "configs": [list(c) for c in ts.configs],
            "qor": ts.qor.tolist(),
            "area": ts.area.tolist(),
            "delay": ts.delay.tolist(),
            "power": ts.power.tolist(),
        }

    @staticmethod
    def _training_from_payload(payload: Dict) -> TrainingSet:
        return TrainingSet(
            configs=[tuple(c) for c in payload["configs"]],
            qor=np.asarray(payload["qor"], dtype=float),
            area=np.asarray(payload["area"], dtype=float),
            delay=np.asarray(payload["delay"], dtype=float),
            power=np.asarray(payload["power"], dtype=float),
        )

    # -- full pipeline ------------------------------------------------------

    def run(self) -> AutoAxResult:
        cfg = self.config
        store = self.store
        timings: Dict[str, float] = {}
        stage_cache: Dict[str, str] = {}
        stage_records: List[Dict] = []
        fits_before = fit_count()
        metrics = get_metrics()
        metrics_mark = metrics.mark()
        metrics.inc("pipeline.runs")

        # Independent per-stage RNG streams: skipping a cached stage
        # must not shift the randomness of the stages that still run.
        rng_train, rng_test, rng_dse = spawn_rngs(cfg.seed, 3)

        base: Dict[str, object] = {}
        config_hash = None
        if store is not None:
            from repro.store import (
                content_hash,
                images_fingerprint,
                library_fingerprint,
            )

            base = {
                "accelerator": self._accelerator_hash(),
                "library": content_hash(
                    library_fingerprint(self.library)
                ),
                "images": content_hash(
                    images_fingerprint(self.images)
                ),
                "scenarios": (
                    [dict(s) for s in self.scenarios]
                    if self.scenarios
                    else None
                ),
            }
            config_hash = content_hash(
                {"inputs": base, "config": cfg.cache_payload()}
            )

        def key_of(payload: Dict) -> Optional[str]:
            if store is None:
                return None
            from repro.store import content_hash

            return content_hash(payload)

        def record_stage(name: str, seconds: float, cache: str,
                         artifacts: List[Dict]) -> None:
            timings[name] = seconds
            stage_cache[name] = cache
            stage_records.append(
                {
                    "name": name,
                    "seconds": round(seconds, 6),
                    "cache": cache,
                    "artifacts": artifacts,
                }
            )
            metrics.observe(f"pipeline.stage_seconds.{name}", seconds)
            metrics.inc(f"pipeline.stage_{cache}")
            complete_event(
                f"pipeline.{name}", seconds, cat="pipeline",
                args={"cache": cache},
            )

        # ---- stage 1: characterize + reduce (preprocessing) -------------
        start = time.perf_counter()
        pre_key = key_of(
            {
                "stage": "preprocessing",
                **base,
                "max_samples": cfg.max_samples,
                "per_op_cap": cfg.per_op_cap,
                "seed": cfg.seed,
            }
        )
        space = None
        profiles: Optional[Dict[str, OperandProfile]] = None
        if store is not None:
            payload = store.get("space", pre_key)
            cached_profiles = store.get("profiles", pre_key)
            if payload is not None and cached_profiles is not None:
                space = self._space_from_payload(payload)
                profiles = cached_profiles
        if space is None:
            profiles = self.profile()
            space = self.reduce(profiles)
            if store is not None:
                payload = self._space_payload(space)
                store.put("space", pre_key, payload)
                store.put("profiles", pre_key, profiles)
            cache = "miss" if store is not None else "off"
        else:
            cache = "hit"
        space_hash = key_of({"space": payload}) if store is not None \
            else None
        record_stage(
            "preprocessing",
            time.perf_counter() - start,
            cache,
            [] if store is None else [
                {"kind": "space", "key": pre_key},
                {"kind": "profiles", "key": pre_key},
            ],
        )

        # ---- stage 2: real-evaluated training/test sets ------------------
        start = time.perf_counter()
        set_keys = {}
        sets: Dict[str, Optional[TrainingSet]] = {
            "train": None, "test": None,
        }
        counts = {"train": cfg.n_train, "test": cfg.n_test}
        rngs = {"train": rng_train, "test": rng_test}
        hits = 0
        for role in ("train", "test"):
            set_keys[role] = key_of(
                {
                    "stage": "training-set",
                    "role": role,
                    "space": space_hash,
                    "accelerator": base.get("accelerator"),
                    "images": base.get("images"),
                    "scenarios": base.get("scenarios"),
                    "count": counts[role],
                    "seed": cfg.seed,
                }
            )
            if store is not None:
                payload = store.get("training-set", set_keys[role])
                if payload is not None:
                    sets[role] = self._training_from_payload(payload)
                    hits += 1
                    continue
            sets[role] = build_training_set(
                space, self.engine(), counts[role], rng=rngs[role]
            )
            if store is not None:
                store.put(
                    "training-set",
                    set_keys[role],
                    self._training_payload(sets[role]),
                )
        train, test = sets["train"], sets["test"]
        record_stage(
            "training_set",
            time.perf_counter() - start,
            "off" if store is None else ("hit" if hits == 2 else "miss"),
            [] if store is None else [
                {"kind": "training-set", "key": set_keys[r]}
                for r in ("train", "test")
            ],
        )

        # ---- stage 3: estimation-model construction ----------------------
        start = time.perf_counter()
        models_key = key_of(
            {
                "stage": "models",
                "train": set_keys["train"],
                "test": set_keys["test"],
                "space": space_hash,
                "engines": list(cfg.engines),
                "include_naive": cfg.include_naive,
                "hw_features": list(cfg.hw_features),
                "seed": cfg.seed,
            }
        )
        qor_reports = hw_reports = None
        if store is not None:
            payload = store.get("models", models_key)
            if payload is not None:
                qor_reports = reports_from_payload(payload["qor"], space)
                hw_reports = reports_from_payload(payload["hw"], space)
        if qor_reports is None:
            qor_reports = fit_engines(
                space, train, test, target="qor",
                engines=cfg.engines, include_naive=cfg.include_naive,
                hw_features=cfg.hw_features, seed=cfg.seed,
            )
            hw_reports = fit_engines(
                space, train, test, target="area",
                engines=cfg.engines, include_naive=cfg.include_naive,
                hw_features=cfg.hw_features, seed=cfg.seed,
            )
            if store is not None:
                store.put(
                    "models",
                    models_key,
                    {
                        "qor": reports_to_payload(qor_reports),
                        "hw": reports_to_payload(hw_reports),
                    },
                )
            cache = "miss" if store is not None else "off"
        else:
            cache = "hit"
        qor_best = select_best_model(qor_reports)
        hw_best = select_best_model(hw_reports)
        record_stage(
            "model_construction",
            time.perf_counter() - start,
            cache,
            [] if store is None else [
                {"kind": "models", "key": models_key}
            ],
        )

        # ---- stage 4: model-driven DSE (pseudo Pareto) -------------------
        start = time.perf_counter()
        dse_key = key_of(
            {
                "stage": "dse",
                "models": models_key,
                "max_evaluations": cfg.max_evaluations,
                "stagnation_limit": cfg.stagnation_limit,
                "seed": cfg.seed,
            }
        )
        pseudo = None
        if store is not None:
            payload = store.get("dse", dse_key)
            if payload is not None:
                points = np.asarray(payload["points"], dtype=float)
                pseudo = DSEResult(
                    configs=[tuple(c) for c in payload["configs"]],
                    points=points.reshape(len(payload["configs"]), -1),
                    evaluations=payload["evaluations"],
                    inserts=payload["inserts"],
                    restarts=payload["restarts"],
                )
        if pseudo is None:
            pseudo = heuristic_pareto_construction(
                space,
                qor_best.model,
                hw_best.model,
                max_evaluations=cfg.max_evaluations,
                stagnation_limit=cfg.stagnation_limit,
                rng=rng_dse,
            )
            if store is not None:
                store.put(
                    "dse",
                    dse_key,
                    {
                        "configs": [list(c) for c in pseudo.configs],
                        "points": pseudo.points.tolist(),
                        "evaluations": pseudo.evaluations,
                        "inserts": pseudo.inserts,
                        "restarts": pseudo.restarts,
                    },
                )
            cache = "miss" if store is not None else "off"
        else:
            cache = "hit"
        record_stage(
            "pseudo_pareto",
            time.perf_counter() - start,
            cache,
            [] if store is None else [{"kind": "dse", "key": dse_key}],
        )

        # ---- stage 5: real evaluation of the pseudo Pareto set -----------
        start = time.perf_counter()
        final_key = key_of(
            {
                "stage": "final",
                "space": space_hash,
                "accelerator": base.get("accelerator"),
                "images": base.get("images"),
                "scenarios": base.get("scenarios"),
                "configs": [list(c) for c in pseudo.configs],
            }
        )
        real = None
        if store is not None:
            real = store.get("evaluations", final_key)
            if real is not None and len(real) != len(pseudo.configs):
                real = None
        if real is None:
            real = self.engine().evaluate_many(space, pseudo.configs)
            if store is not None:
                store.put("evaluations", final_key, real)
            cache = "miss" if store is not None else "off"
        else:
            cache = "hit"
        record_stage(
            "final_analysis",
            time.perf_counter() - start,
            cache,
            [] if store is None else [
                {"kind": "evaluations", "key": final_key}
            ],
        )

        # ---- assemble result + manifest ----------------------------------
        qor = np.asarray([r.qor for r in real])
        area = np.asarray([r.area for r in real])
        energy = np.asarray([r.energy for r in real])

        front2 = pareto_front_indices(np.stack([-qor, area], axis=1))
        front3 = pareto_front_indices(
            np.stack([-qor, area, energy], axis=1)
        )

        engine_stats: Dict[str, object] = {
            "engine_built": self._engine is not None,
            "model_fits": fit_count() - fits_before,
            "synth_hits": 0,
            "synth_store_hits": 0,
            "synth_misses": 0,
        }
        if self._engine is not None:
            engine_stats.update(self._engine.synth_stats())

        run_id = None
        if self.ledger is not None:
            run_id = self.ledger.new_run_id()
            self.ledger.record(
                run_id,
                kind=self.run_kind,
                label=self.run_label,
                params=self.run_params,
                config_hash=config_hash or "",
                stages=stage_records,
                seed=cfg.seed,
                extra={
                    "engine_stats": engine_stats,
                    "metrics": metrics.snapshot(since=metrics_mark),
                },
            )

        return AutoAxResult(
            space=space,
            profiles=profiles,
            initial_space_size=self.initial_space_size(),
            reduced_space_size=space.size(),
            qor_reports=qor_reports,
            hw_reports=hw_reports,
            qor_model=qor_best,
            hw_model=hw_best,
            pseudo_pareto=pseudo,
            real_evaluations=real,
            final_configs=[pseudo.configs[i] for i in front2],
            final_points=np.stack([qor[front2], area[front2]], axis=1),
            final_configs_3d=[pseudo.configs[i] for i in front3],
            final_points_3d=np.stack(
                [qor[front3], area[front3], energy[front3]], axis=1
            ),
            timings=timings,
            stage_cache=stage_cache,
            run_id=run_id,
            engine_stats=engine_stats,
        )
