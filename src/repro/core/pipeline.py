"""End-to-end autoAx pipeline (paper Fig. 1).

``AutoAx.run()`` executes the three methodology steps against one
accelerator + library + benchmark-data triple and returns everything the
paper reports: design-space sizes after each step (Table 5), the chosen
estimation models with their fidelities (Table 3), the pseudo Pareto set,
and the final real-evaluated Pareto fronts in (SSIM, area) and
(SSIM, area, energy) space (Fig. 5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.accelerators.profiler import OperandProfile, profile_accelerator
from repro.core.configuration import (
    HW_FEATURES,
    Configuration,
    ConfigurationSpace,
)
from repro.core.dse import DSEResult, heuristic_pareto_construction
from repro.core.engine import EvaluationEngine, EvaluationResult
from repro.core.modeling import (
    EngineReport,
    build_training_set,
    fit_engines,
    select_best_model,
)
from repro.core.pareto import pareto_front_indices
from repro.core.preprocessing import reduce_library
from repro.library.library import ComponentLibrary
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class AutoAxConfig:
    """Tunables of the pipeline; defaults are laptop-scale."""

    n_train: int = 400
    n_test: int = 200
    engines: Tuple[str, ...] = ("Random Forest",)
    include_naive: bool = True
    hw_features: Tuple[str, ...] = HW_FEATURES
    max_evaluations: int = 20_000
    stagnation_limit: int = 50
    per_op_cap: Optional[int] = None
    max_samples: int = 1 << 16
    seed: int = 0
    #: worker processes for real evaluation (None: REPRO_WORKERS / serial)
    workers: Optional[int] = None

    def __post_init__(self):
        if self.n_train < 2 or self.n_test < 2:
            raise ValueError("need at least two train and test samples")
        if not self.engines:
            raise ValueError("at least one learning engine is required")


@dataclass
class AutoAxResult:
    """Everything produced by one pipeline run."""

    space: ConfigurationSpace
    profiles: Dict[str, OperandProfile]
    initial_space_size: float
    reduced_space_size: float
    qor_reports: List[EngineReport]
    hw_reports: List[EngineReport]
    qor_model: EngineReport
    hw_model: EngineReport
    pseudo_pareto: DSEResult
    real_evaluations: List[EvaluationResult]
    final_configs: List[Configuration]
    final_points: np.ndarray  # columns: qor (ssim), area
    final_configs_3d: List[Configuration]
    final_points_3d: np.ndarray  # columns: qor, area, energy
    timings: Dict[str, float] = field(default_factory=dict)

    def summary_row(self) -> Dict[str, float]:
        """The Table 5 row of this run."""
        return {
            "all_possible": self.initial_space_size,
            "after_preprocessing": self.reduced_space_size,
            "pseudo_pareto": float(len(self.pseudo_pareto)),
            "final_pareto": float(len(self.final_configs)),
        }


class AutoAx:
    """The autoAx methodology bound to one accelerator instance."""

    def __init__(
        self,
        accelerator: ImageAccelerator,
        library: ComponentLibrary,
        images: Sequence[np.ndarray],
        scenarios: Optional[Sequence[Dict[str, int]]] = None,
        config: AutoAxConfig = AutoAxConfig(),
    ):
        self.accelerator = accelerator
        self.library = library
        self.images = list(images)
        self.scenarios = scenarios
        self.config = config

    # -- individual steps ---------------------------------------------------

    def profile(self) -> Dict[str, OperandProfile]:
        """Step 1a: operand PMFs of every replaceable operation."""
        return profile_accelerator(
            self.accelerator,
            self.images,
            scenarios=self.scenarios,
            max_samples=self.config.max_samples,
            rng=self.config.seed,
        )

    def reduce(
        self, profiles: Dict[str, OperandProfile]
    ) -> ConfigurationSpace:
        """Step 1b: WMED scoring + per-operation Pareto filtering."""
        return reduce_library(
            self.accelerator,
            self.library,
            profiles,
            per_op_cap=self.config.per_op_cap,
        )

    def initial_space_size(self) -> float:
        """|library(op_1)| * ... * |library(op_n)| before filtering."""
        total = 1.0
        for slot in self.accelerator.op_slots():
            total *= self.library.size(slot.signature)
        return total

    # -- full pipeline ---------------------------------------------------------

    def run(self) -> AutoAxResult:
        cfg = self.config
        rng = ensure_rng(cfg.seed)
        timings: Dict[str, float] = {}

        start = time.perf_counter()
        profiles = self.profile()
        space = self.reduce(profiles)
        timings["preprocessing"] = time.perf_counter() - start

        evaluator = EvaluationEngine(
            self.accelerator, self.images, self.scenarios,
            workers=cfg.workers,
        )

        start = time.perf_counter()
        train = build_training_set(
            space, evaluator, cfg.n_train, rng=rng
        )
        test = build_training_set(space, evaluator, cfg.n_test, rng=rng)
        timings["training_set"] = time.perf_counter() - start

        start = time.perf_counter()
        qor_reports = fit_engines(
            space,
            train,
            test,
            target="qor",
            engines=cfg.engines,
            include_naive=cfg.include_naive,
            hw_features=cfg.hw_features,
            seed=cfg.seed,
        )
        hw_reports = fit_engines(
            space,
            train,
            test,
            target="area",
            engines=cfg.engines,
            include_naive=cfg.include_naive,
            hw_features=cfg.hw_features,
            seed=cfg.seed,
        )
        qor_best = select_best_model(qor_reports)
        hw_best = select_best_model(hw_reports)
        timings["model_construction"] = time.perf_counter() - start

        start = time.perf_counter()
        pseudo = heuristic_pareto_construction(
            space,
            qor_best.model,
            hw_best.model,
            max_evaluations=cfg.max_evaluations,
            stagnation_limit=cfg.stagnation_limit,
            rng=rng,
        )
        timings["pseudo_pareto"] = time.perf_counter() - start

        start = time.perf_counter()
        real = evaluator.evaluate_many(space, pseudo.configs)
        timings["final_analysis"] = time.perf_counter() - start

        qor = np.asarray([r.qor for r in real])
        area = np.asarray([r.area for r in real])
        energy = np.asarray([r.energy for r in real])

        front2 = pareto_front_indices(np.stack([-qor, area], axis=1))
        front3 = pareto_front_indices(
            np.stack([-qor, area, energy], axis=1)
        )

        return AutoAxResult(
            space=space,
            profiles=profiles,
            initial_space_size=self.initial_space_size(),
            reduced_space_size=space.size(),
            qor_reports=qor_reports,
            hw_reports=hw_reports,
            qor_model=qor_best,
            hw_model=hw_best,
            pseudo_pareto=pseudo,
            real_evaluations=real,
            final_configs=[pseudo.configs[i] for i in front2],
            final_points=np.stack([qor[front2], area[front2]], axis=1),
            final_configs_3d=[pseudo.configs[i] for i in front3],
            final_points_3d=np.stack(
                [qor[front3], area[front3], energy[front3]], axis=1
            ),
            timings=timings,
        )
