"""Exact evaluation-budget accounting for design-space exploration.

The paper's Table 4 compares search algorithms *at matched
model-evaluation budgets*, so an evaluation that is estimated but never
consumed (e.g. the tail of a candidate batch discarded after an accepted
hill-climbing move) still costs one model call and must be counted.  The
seed implementation kept the counter next to the consumption loop and
silently dropped those tails; this module closes that bug class by
construction:

* :class:`EvaluationBudget` is the single ledger of model calls.  It is
  charged *before* the models run and refuses (raises
  :class:`~repro.errors.BudgetExceededError`) to go negative, so no code
  path can issue more model calls than the budget allows.
* :class:`MeteredEstimator` is the only sanctioned way for a search
  strategy to invoke the QoR/HW estimation models: every configuration
  that reaches ``predict`` is charged exactly once (one *evaluation* =
  one configuration estimated by both the QoR and the hardware model,
  the paper's unit).

One budget can be shared by several strategies (the portfolio runner
hands each island a slice); each strategy's own spend is the estimator's
``count``.

``MeteredEstimator`` can also fan prediction batches out to worker
processes (``workers``): chunks are predicted in parallel and
concatenated in submission order, so results are bit-identical to the
serial path for any row-independent regressor.
"""

from __future__ import annotations

import math
import threading
from typing import Optional

import numpy as np

from repro.errors import BudgetExceededError, DSEError
from repro.telemetry import get_metrics


class EvaluationBudget:
    """A hard cap on model evaluations, charged before the models run.

    ``total=None`` means unlimited (spend is still tracked).  ``grant``
    answers "how many of ``requested`` may I still estimate?" without
    reserving anything; ``charge`` commits the spend and raises when it
    would exceed the cap — callers are expected to ``grant`` first and
    size their batch accordingly.

    The ledger is **thread-safe**: one budget may be shared by several
    coordinator threads (the serving layer meters every API key through
    one budget).  ``charge`` is atomic under an internal lock, and
    concurrent grant-then-charge callers should use :meth:`reserve`,
    which grants and commits in one locked step — two threads
    interleaving ``grant``/``charge`` could otherwise both observe the
    same ``remaining`` and jointly overspend the exact-accounting
    contract.
    """

    __slots__ = ("total", "_spent", "_lock")

    def __init__(self, total: Optional[int] = None):
        if total is not None:
            total = int(total)
            if total < 1:
                raise DSEError("evaluation budget must be >= 1")
        self.total = total
        self._spent = 0
        self._lock = threading.Lock()

    # Budgets travel inside worker-task payloads (portfolio islands);
    # locks do not pickle, so rebuild one on the other side.
    def __getstate__(self):
        return {"total": self.total, "spent": self._spent}

    def __setstate__(self, state):
        self.total = state["total"]
        self._spent = state["spent"]
        self._lock = threading.Lock()

    @property
    def spent(self) -> int:
        """Model evaluations charged so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Evaluations left (``inf`` for an unlimited budget)."""
        if self.total is None:
            return math.inf
        return self.total - self._spent

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0

    def grant(self, requested: int) -> int:
        """Largest batch size <= ``requested`` the budget still allows."""
        if requested < 0:
            raise DSEError("cannot request a negative batch")
        return int(min(requested, max(0, self.remaining)))

    def charge(self, count: int) -> None:
        """Commit ``count`` evaluations; raise instead of overdrawing."""
        if count < 0:
            raise DSEError("cannot charge a negative evaluation count")
        with self._lock:
            if (
                self.total is not None
                and self._spent + count > self.total
            ):
                raise BudgetExceededError(
                    f"charging {count} evaluations would exceed the "
                    f"budget ({self._spent}/{self.total} spent)"
                )
            self._spent += count

    def reserve(self, requested: int) -> int:
        """Atomically grant *and* charge up to ``requested`` evaluations.

        Returns the number actually committed (possibly 0 when the
        budget is exhausted).  This is the concurrency-safe form of the
        ``grant``-then-``charge`` idiom: the check and the commit happen
        under one lock, so N threads hammering one budget can never
        jointly spend past ``total``.
        """
        if requested < 0:
            raise DSEError("cannot request a negative batch")
        with self._lock:
            if self.total is None:
                granted = int(requested)
            else:
                granted = int(
                    min(requested, max(0, self.total - self._spent))
                )
            self._spent += granted
            return granted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if self.total is None else str(self.total)
        return f"<EvaluationBudget {self._spent}/{cap}>"


#: Minimum rows per parallel prediction chunk — below this the IPC
#: overhead dwarfs the prediction work.
_MIN_CHUNK = 64


def _predict_chunk(context, genomes: np.ndarray) -> np.ndarray:
    """Runtime task: fused QoR + hardware predict of one genome chunk."""
    qor_model, hw_model = context
    return np.stack(
        [qor_model.predict(genomes), hw_model.predict(genomes)], axis=1
    )


class MeteredEstimator:
    """Budget-charging gateway to the QoR and hardware estimation models.

    ``estimate(configs)`` returns the ``(n, 2)`` array of
    ``(estimated QoR, estimated cost)`` rows and charges ``n``
    evaluations to the budget *first* — a batch that would overdraw the
    budget raises before any model call is issued.

    Each batch runs both models through one fused pass over a genome
    matrix built once.  With ``workers > 1`` large batches are chunked
    through the shared :class:`~repro.core.runtime.ParallelRuntime`
    (models published to the persistent pool via shared memory; chunk
    results concatenate in submission order, so the output is
    bit-identical to the serial path for any row-independent
    regressor — and the runtime's cost model keeps small batches
    serial).  :meth:`close` remains for API compatibility; the pool is
    process-wide and outlives the estimator.
    """

    def __init__(
        self,
        qor_model,
        hw_model,
        budget: Optional[EvaluationBudget] = None,
        workers: Optional[int] = None,
    ):
        self.qor_model = qor_model
        self.hw_model = hw_model
        self.budget = budget if budget is not None else EvaluationBudget()
        self.count = 0  # configurations this estimator charged
        self.calls = 0  # estimate() invocations
        self._workers = workers if workers and workers > 1 else None
        # Guards the charge-then-count sequence: concurrent estimate()
        # callers must observe spend == count at every instant, and two
        # threads must never interleave their budget checks.
        self._meter_lock = threading.Lock()

    def __getstate__(self):
        state = {
            slot: getattr(self, slot)
            for slot in self.__dict__
            if slot != "_meter_lock"
        }
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._meter_lock = threading.Lock()

    # -- lifecycle (the pool is owned by the shared runtime) -----------------

    def close(self) -> None:
        """Kept for API compatibility; the shared pool persists."""

    def __enter__(self) -> "MeteredEstimator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- estimation ----------------------------------------------------------

    def estimate(self, configs) -> np.ndarray:
        """Charge and estimate a batch of configurations."""
        n = len(configs)
        if n == 0:
            return np.empty((0, 2), dtype=float)
        with self._meter_lock:
            self.budget.charge(n)
            self.count += n
            self.calls += 1
        metrics = get_metrics()
        metrics.inc("search.evaluations", n)
        metrics.inc("search.estimate_calls")
        metrics.observe("search.estimate_batch", n)
        # One genome matrix for the whole generation; both models (and
        # any parallel chunks) predict from the same compiled array.
        genomes = np.asarray(configs)
        if self._workers and n >= 2 * _MIN_CHUNK:
            from repro.core.runtime import get_runtime

            n_chunks = min(self._workers * 2, n // _MIN_CHUNK)
            chunks = np.array_split(genomes, max(1, n_chunks))
            return np.vstack(
                get_runtime().map(
                    _predict_chunk,
                    chunks,
                    context=(self.qor_model, self.hw_model),
                    workers=self._workers,
                    label="model-predict",
                )
            )
        return _predict_chunk((self.qor_model, self.hw_model), genomes)
