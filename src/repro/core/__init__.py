"""The autoAx methodology: the paper's primary contribution.

Step 1 — :mod:`repro.core.preprocessing`: profile-driven WMED scoring and
per-operation Pareto filtering of the component library.
Step 2 — :mod:`repro.core.modeling`: training-set construction and
fidelity-driven selection of QoR / hardware estimation models.
Step 3 — :mod:`repro.core.dse`: model-based heuristic Pareto-set
construction (Algorithm 1) plus the random-sampling / uniform-selection /
exhaustive baselines, and :mod:`repro.core.pipeline` tying everything into
the end-to-end flow of Fig. 1.
"""

from repro.core.budget import EvaluationBudget, MeteredEstimator
from repro.core.wmed import wmed, wmed_table
from repro.core.configuration import ConfigurationSpace
from repro.core.preprocessing import pareto_filter_indices, reduce_library
from repro.core.pareto import (
    ParetoArchive,
    dominates,
    front_distances,
    hypervolume_2d,
    pareto_front_indices,
)
from repro.core.engine import EvaluationEngine
from repro.core.evaluation import AcceleratorEvaluator, EvaluationResult
from repro.core.modeling import (
    EstimationModel,
    TrainingSet,
    build_training_set,
    fit_engines,
    select_best_model,
)
from repro.core.dse import (
    DSEResult,
    exhaustive_search,
    heuristic_pareto_construction,
    random_sampling,
    uniform_selection,
)
from repro.core.nsga2 import nsga2_search
from repro.core.pipeline import AutoAx, AutoAxConfig, AutoAxResult

__all__ = [
    "EvaluationBudget",
    "MeteredEstimator",
    "wmed",
    "wmed_table",
    "ConfigurationSpace",
    "pareto_filter_indices",
    "reduce_library",
    "ParetoArchive",
    "dominates",
    "front_distances",
    "hypervolume_2d",
    "pareto_front_indices",
    "AcceleratorEvaluator",
    "EvaluationEngine",
    "EvaluationResult",
    "EstimationModel",
    "TrainingSet",
    "build_training_set",
    "fit_engines",
    "select_best_model",
    "DSEResult",
    "heuristic_pareto_construction",
    "random_sampling",
    "uniform_selection",
    "exhaustive_search",
    "nsga2_search",
    "AutoAx",
    "AutoAxConfig",
    "AutoAxResult",
]
