"""Shared parallel runtime: persistent workers, shared memory, auto-serial.

Before this module existed, every parallel stage (``evaluate_many``
chunks, library-build chunks, portfolio islands, chunked model predicts)
carried its own copy of the same fork-pool boilerplate: create a fresh
``multiprocessing`` pool per call, smuggle bulk state to the children
through fork copy-on-write globals (or re-pickle it per worker on
non-fork platforms), and hope the work outweighed the fork tax.  On
small machines it often did not — ``BENCH_library.json`` recorded a
4-worker build *losing* to serial (0.87x).

:class:`ParallelRuntime` replaces all of those call sites with one
process-wide runtime that makes ``workers=N`` safe by construction:

* **one persistent worker pool** reused across pipeline stages — the
  pool-startup cost is paid once per process, not once per call;
* **shared-memory publishing** — stage context (engines, libraries,
  models, stores) is pickled *once* per stage with every large numpy
  array (operand LUTs, stacked image batches, golden SSIM statistics)
  hoisted into a ``multiprocessing.shared_memory`` segment.  Workers
  attach zero-copy read-only views; nothing bulk ever crosses the task
  pipe.  Segments are tracked and unlinked on :meth:`close` and at
  interpreter exit (crash or ``KeyboardInterrupt`` included);
* **a cost model with a serial floor** — the first task of every batch
  is probed in-process; the measured per-task cost is extrapolated and
  compared against the pool-startup + publish + IPC overhead.  When the
  estimated win is not there (tiny batches, single-core machines), the
  batch runs serially on the exact same code path — so a larger
  ``workers`` setting can never be *slower* than ``workers=1``;
* **one start-method story** — context travels the same shared-memory
  route under ``fork``, ``forkserver`` and ``spawn``
  (``REPRO_START_METHOD``), so non-fork platforms produce bit-identical
  results instead of exercising a divergent fallback path.

Task functions must be module-level callables of the form
``fn(context, task) -> result`` with deterministic, task-independent
behaviour; under that contract results are **bit-identical for any
worker count** (serial, probed, and pooled execution run the same
function on the same values).

Environment knobs
-----------------
``REPRO_WORKERS``            default worker count (shared convention)
``REPRO_START_METHOD``       fork | forkserver | spawn (default: fork
                             where available)
``REPRO_PARALLEL``           auto | always | never (cost-model override)
``REPRO_PARALLEL_THRESHOLD`` minimum estimated serial seconds before a
                             batch may go parallel (default 0.05)
``REPRO_NO_SHM``             set to disable shared-memory publishing
                             (contexts then travel inline per task)
"""

from __future__ import annotations

import atexit
import io
import os
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.telemetry import (
    absorb_worker_delta,
    collect_worker_delta,
    get_metrics,
)
from repro.telemetry.tracing import current_tracer, worker_tracer

#: Environment knob: default worker-process count (shared convention).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment knob: multiprocessing start method for the worker pool.
START_METHOD_ENV = "REPRO_START_METHOD"

#: Environment knob: force ("always"), forbid ("never") or let the cost
#: model decide ("auto", default) parallel execution.
PARALLEL_MODE_ENV = "REPRO_PARALLEL"

#: Environment knob: minimum estimated serial seconds before the cost
#: model considers fanning a batch out.
THRESHOLD_ENV = "REPRO_PARALLEL_THRESHOLD"

#: Environment knob: disable shared-memory publishing when set.
NO_SHM_ENV = "REPRO_NO_SHM"

#: Arrays at least this large are hoisted into shared memory when a
#: context is published; smaller ones ride along in the pickle.
MIN_SHARED_ARRAY_BYTES = 1 << 14

#: Default cost-model floor: batches whose estimated *remaining* serial
#: time is below this many seconds always stay serial.
DEFAULT_PARALLEL_THRESHOLD = 0.05

#: Cost-model constants (rough, deliberately conservative: the penalty
#: for wrongly staying serial is bounded; wrongly going parallel on a
#: tiny batch is exactly the fork tax this module exists to kill).
_FORK_STARTUP_PER_WORKER = 0.02
_SPAWN_STARTUP_PER_WORKER = 0.35
_PUBLISH_SECONDS = 0.05
_IPC_PER_TASK = 0.002

#: Required predicted advantage before parallel is chosen.
_PARALLEL_MARGIN = 0.9

#: The vectorized in-process pass carries none of the pool's
#: fork/publish/IPC overhead, so it pays off far below the parallel
#: threshold; it is considered from this fraction of it.
_VECTORIZED_THRESHOLD_FRACTION = 0.1


# ---------------------------------------------------------------------------
# Worker-count validation (the one shared copy; re-exported by
# repro.core.engine for backward compatibility).
# ---------------------------------------------------------------------------

def validate_workers(value, source: str = "workers") -> Optional[int]:
    """Normalise a worker-count setting to ``None`` (serial) or ``>= 2``.

    Accepts ``None``, integers and integer-valued strings; 0 and 1 mean
    in-process evaluation.  Non-integer or negative values raise a
    :class:`~repro.errors.ValidationError` (a ``ValueError`` subclass)
    naming ``source`` (the knob the value came from) — silently falling
    back to serial evaluation would hide the misconfiguration for the
    entire (expensive) run.
    """
    from repro.errors import ValidationError

    if value is None:
        return None
    if isinstance(value, bool) or isinstance(value, float):
        raise ValidationError(
            f"{source} must be an integer worker count, got {value!r}"
        )
    try:
        count = int(str(value).strip())
    except ValueError:
        raise ValidationError(
            f"{source} must be an integer worker count, got {value!r}"
        ) from None
    if count < 0:
        raise ValidationError(
            f"{source} must be >= 0 (0 or 1 run in-process), "
            f"got {count}"
        )
    return count if count > 1 else None


def default_workers() -> Optional[int]:
    """Worker count from ``REPRO_WORKERS`` (values <= 1 mean in-process)."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return None
    return validate_workers(raw, source=WORKERS_ENV)


def usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Shared-memory array publishing.
# ---------------------------------------------------------------------------

#: Worker-side cache of attached segments: name -> (SharedMemory, array).
#: The SharedMemory object must stay referenced while views exist.
_ATTACHED: Dict[str, Tuple[object, np.ndarray]] = {}


def _rebuild_shared_array(
    name: str, shape: Tuple[int, ...], dtype: str
) -> np.ndarray:
    """Unpickle hook: attach a published array as a read-only view."""
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[1]
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    view.flags.writeable = False
    _ATTACHED[name] = (shm, view)
    return view


class _ShmPickler(pickle.Pickler):
    """Pickler that hoists large numpy arrays into shared memory."""

    def __init__(self, file, runtime: "ParallelRuntime", segments: List[str]):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._runtime = runtime
        self._segments = segments

    def reducer_override(self, obj):
        if (
            type(obj) is np.ndarray
            and obj.dtype != object
            and obj.nbytes >= MIN_SHARED_ARRAY_BYTES
        ):
            name = self._runtime._create_segment_for(obj)
            if name is not None:
                self._segments.append(name)
                return (
                    _rebuild_shared_array,
                    (name, obj.shape, obj.dtype.str),
                )
        return NotImplemented


class _ContextRef:
    """Picklable pointer to a published stage context.

    ``shm_name`` names the segment holding the pickled context bytes;
    when shared memory is unavailable the bytes ride inline in ``blob``
    instead.  Workers cache the unpickled context by ``token``.
    """

    __slots__ = ("token", "shm_name", "size", "blob")

    def __init__(self, token, shm_name=None, size=0, blob=None):
        self.token = token
        self.shm_name = shm_name
        self.size = size
        self.blob = blob

    def __reduce__(self):
        return (
            _ContextRef,
            (self.token, self.shm_name, self.size, self.blob),
        )


#: Worker-side cache of resolved contexts, newest last.
_CONTEXTS: "OrderedDict[int, object]" = OrderedDict()

#: Worker-side context cache size (stage contexts are few per run).
_MAX_WORKER_CONTEXTS = 4

#: True inside a runtime worker process (set by the pool initializer).
_IN_WORKER = False


def _worker_init() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _resolve_context(ref: Optional[_ContextRef]):
    if ref is None:
        return None
    cached = _CONTEXTS.get(ref.token)
    if cached is not None or ref.token in _CONTEXTS:
        _CONTEXTS.move_to_end(ref.token)
        return cached
    if ref.blob is not None:
        payload = ref.blob
    else:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=ref.shm_name)
        try:
            payload = bytes(shm.buf[: ref.size])
        finally:
            shm.close()
    context = pickle.loads(payload)
    _CONTEXTS[ref.token] = context
    while len(_CONTEXTS) > _MAX_WORKER_CONTEXTS:
        _CONTEXTS.popitem(last=False)
    return context


def _call_task(payload):
    """Worker-side task wrapper.

    Returns ``(result, telemetry_delta)``: the runtime strips the
    piggybacked delta before yielding, so callers observe results that
    are bit-identical to the serial path.  ``trace_ctx`` (trace id,
    parent span id, span name) is ``None`` unless a tracer is active
    in the parent.
    """
    fn, ref, task, trace_ctx = payload
    context = _resolve_context(ref)
    if trace_ctx is None:
        result = fn(context, task)
    else:
        tracer = worker_tracer(trace_ctx[0])
        with tracer.span(
            trace_ctx[2], cat="worker", parent=trace_ctx[1]
        ):
            result = fn(context, task)
    return result, collect_worker_delta()


# ---------------------------------------------------------------------------
# Run decisions (telemetry consumed by benchmarks and tests).
# ---------------------------------------------------------------------------

@dataclass
class RunDecision:
    """How one batch was executed and why."""

    label: str
    n_tasks: int
    requested_workers: Optional[int]
    effective_workers: int
    mode: str  # "serial" | "parallel" | "vectorized"
    reason: str
    probe_seconds: float = 0.0
    est_serial_seconds: float = 0.0
    est_parallel_seconds: float = 0.0
    est_vectorized_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "n_tasks": self.n_tasks,
            "requested_workers": self.requested_workers,
            "effective_workers": self.effective_workers,
            "mode": self.mode,
            "reason": self.reason,
            "probe_seconds": round(self.probe_seconds, 6),
            "est_serial_seconds": round(self.est_serial_seconds, 6),
            "est_parallel_seconds": round(self.est_parallel_seconds, 6),
            "est_vectorized_seconds": round(
                self.est_vectorized_seconds, 6
            ),
        }


# ---------------------------------------------------------------------------
# The runtime.
# ---------------------------------------------------------------------------

class ParallelRuntime:
    """Process-wide parallel execution service (see module docstring)."""

    def __init__(
        self,
        start_method: Optional[str] = None,
        max_contexts: int = 8,
    ):
        self._owner_pid = os.getpid()
        self._lock = threading.RLock()
        self._start_method = self._pick_start_method(start_method)
        self._executor = None
        self._executor_size = 0
        self._segments: Dict[str, object] = {}  # name -> SharedMemory
        self._segment_seq = 0
        self._ctx_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._ctx_segments: Dict[int, List[str]] = {}
        self._ctx_token = 0
        self._max_contexts = max_contexts
        self._shm_ok = not os.environ.get(NO_SHM_ENV, "").strip()
        self.decisions: List[RunDecision] = []
        self.stats: Dict[str, int] = {
            "serial_batches": 0,
            "parallel_batches": 0,
            "vectorized_batches": 0,
            "contexts_published": 0,
            "context_cache_hits": 0,
            "segments_created": 0,
        }

    # -- configuration -------------------------------------------------------

    @staticmethod
    def _pick_start_method(start_method: Optional[str]) -> str:
        import multiprocessing as mp

        requested = start_method or os.environ.get(
            START_METHOD_ENV, ""
        ).strip()
        from repro.errors import ValidationError

        available = mp.get_all_start_methods()
        if requested:
            if requested not in available:
                raise ValidationError(
                    f"{START_METHOD_ENV} must be one of {available}, "
                    f"got {requested!r}"
                )
            return requested
        return "fork" if "fork" in available else available[0]

    @property
    def start_method(self) -> str:
        return self._start_method

    @property
    def last_decision(self) -> Optional[RunDecision]:
        return self.decisions[-1] if self.decisions else None

    def tracked_segments(self) -> List[str]:
        """Names of live shared-memory segments this runtime owns."""
        return sorted(self._segments)

    @staticmethod
    def threshold_seconds() -> float:
        raw = os.environ.get(THRESHOLD_ENV)
        if raw is None:
            return DEFAULT_PARALLEL_THRESHOLD
        from repro.utils.validation import check_env_float

        # Set-but-blank is a configuration error (the knob was clearly
        # meant to do something), not a silent fallback — the same
        # contract as check_env_dir for REPRO_STORE_DIR.
        return check_env_float(raw, source=THRESHOLD_ENV, minimum=0.0)

    @staticmethod
    def _parallel_mode() -> str:
        from repro.errors import ValidationError

        mode = os.environ.get(PARALLEL_MODE_ENV, "auto").strip() or "auto"
        if mode not in ("auto", "always", "never"):
            raise ValidationError(
                f"{PARALLEL_MODE_ENV} must be auto, always or never, "
                f"got {mode!r}"
            )
        return mode

    # -- shared-memory segments ---------------------------------------------

    def _segment_name(self) -> str:
        self._segment_seq += 1
        return f"repro-{self._owner_pid}-{self._segment_seq}"

    def _create_segment(self, size: int):
        """A fresh tracked segment, or ``None`` if shm is unavailable."""
        if not self._shm_ok:
            return None
        from multiprocessing import shared_memory

        for _ in range(16):
            name = self._segment_name()
            try:
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, size), name=name
                )
            except FileExistsError:  # pragma: no cover - pid reuse race
                continue
            except OSError:
                # No usable /dev/shm (or segment limit hit): degrade to
                # inline context payloads for the rest of the process.
                self._shm_ok = False
                return None
            self._segments[shm.name] = shm
            self.stats["segments_created"] += 1
            metrics = get_metrics()
            metrics.inc("runtime.segments_created")
            metrics.inc("runtime.shm_bytes", max(1, size))
            return shm
        self._shm_ok = False  # pragma: no cover - pathological
        return None  # pragma: no cover

    def _create_segment_for(self, arr: np.ndarray) -> Optional[str]:
        shm = self._create_segment(arr.nbytes)
        if shm is None:
            return None
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        return shm.name

    def _unlink_segment(self, name: str) -> None:
        shm = self._segments.pop(name, None)
        if shm is None:
            return
        try:
            shm.close()
            shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass

    # -- context publishing --------------------------------------------------

    @staticmethod
    def _context_key(context) -> tuple:
        if isinstance(context, tuple):
            return tuple(id(item) for item in context)
        return (id(context),)

    def publish(self, context) -> Optional[_ContextRef]:
        """Publish a stage context for the workers (cached by identity).

        The context is pickled once with every large array hoisted into
        shared memory; repeat calls with the *same objects* reuse the
        published payload.  Returns ``None`` for a ``None`` context.
        """
        if context is None:
            return None
        with self._lock:
            key = self._context_key(context)
            cached = self._ctx_cache.get(key)
            if cached is not None:
                self._ctx_cache.move_to_end(key)
                self.stats["context_cache_hits"] += 1
                get_metrics().inc("runtime.context_cache_hits")
                return cached[0]

            self._ctx_token += 1
            token = self._ctx_token
            segments: List[str] = []
            buffer = io.BytesIO()
            _ShmPickler(buffer, self, segments).dump(context)
            payload = buffer.getvalue()

            shm = self._create_segment(len(payload))
            if shm is not None:
                shm.buf[: len(payload)] = payload
                segments.append(shm.name)
                ref = _ContextRef(
                    token, shm_name=shm.name, size=len(payload)
                )
            else:
                ref = _ContextRef(token, blob=payload)

            self._ctx_cache[key] = (ref, context)
            self._ctx_segments[token] = segments
            self.stats["contexts_published"] += 1
            get_metrics().inc("runtime.contexts_published")
            while len(self._ctx_cache) > self._max_contexts:
                _, (old_ref, _) = self._ctx_cache.popitem(last=False)
                for name in self._ctx_segments.pop(old_ref.token, []):
                    self._unlink_segment(name)
            return ref

    # -- pool lifecycle ------------------------------------------------------

    def _get_executor(self, workers: int):
        from concurrent.futures import ProcessPoolExecutor
        import multiprocessing as mp

        if self._executor is not None and self._executor_size != workers:
            self._shutdown_executor()
        if self._executor is None:
            ctx = mp.get_context(self._start_method)
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=_worker_init,
            )
            self._executor_size = workers
            get_metrics().inc("runtime.pool_starts")
        else:
            get_metrics().inc("runtime.pool_reuse")
        return self._executor

    def _shutdown_executor(self, wait: bool = True) -> None:
        if self._executor is not None:
            try:
                self._executor.shutdown(wait=wait, cancel_futures=True)
            except Exception:  # pragma: no cover - teardown best effort
                pass
            self._executor = None
            self._executor_size = 0

    def close(self) -> None:
        """Shut the pool down and unlink every tracked shm segment.

        Safe to call repeatedly; a no-op in processes that merely
        inherited this runtime object (forked workers must never unlink
        the parent's segments).
        """
        if os.getpid() != self._owner_pid:
            return
        with self._lock:
            self._shutdown_executor()
            for name in list(self._segments):
                self._unlink_segment(name)
            self._ctx_cache.clear()
            self._ctx_segments.clear()

    # -- cost model ----------------------------------------------------------

    def _record(self, d: RunDecision) -> RunDecision:
        self.decisions.append(d)
        if len(self.decisions) > 256:
            del self.decisions[:128]
        self.stats[f"{d.mode}_batches"] += 1
        metrics = get_metrics()
        metrics.inc(f"runtime.{d.mode}_batches")
        metrics.inc(f"runtime.decision.{d.reason}")
        return d

    def decide(
        self,
        label: str,
        n_tasks: int,
        workers: Optional[int],
        probe_seconds: float,
        vectorized_seconds: Optional[float] = None,
        context=None,
    ) -> RunDecision:
        """Cost-model decision for a caller-managed batch.

        For callers that own an execution path :meth:`map` cannot run —
        the evaluation engine's configuration-axis batched pass — and
        therefore probe their first task themselves.  ``probe_seconds``
        is the measured per-task serial cost; ``vectorized_seconds``,
        when given, is the caller's estimate for finishing the
        *remaining* ``n_tasks - 1`` tasks in one vectorized in-process
        pass and enables the three-way serial / parallel / vectorized
        choice.  ``context`` is only used to check whether a parallel
        run would still need to publish its stage context.  The caller
        must execute the returned :attr:`RunDecision.mode` itself.
        """
        with self._lock:
            context_cached = context is None or (
                self._context_key(context) in self._ctx_cache
            )
        if vectorized_seconds is None:
            return self._decide(
                label, n_tasks, workers, context_cached, probe_seconds
            )
        return self._decide_hybrid(
            label, n_tasks, workers, context_cached, probe_seconds,
            vectorized_seconds,
        )

    def _decide_hybrid(
        self,
        label: str,
        n_tasks: int,
        requested: Optional[int],
        context_cached: bool,
        probe_seconds: float,
        vectorized_seconds: float,
    ) -> RunDecision:
        """Three-way choice: serial loop, process pool, vectorized pass.

        The vectorized pass runs in-process, so it is available even
        where the pool is not (``workers <= 1``, single core, nested in
        a worker, ``REPRO_PARALLEL=never``); it needs the same predicted
        margin over serial as the pool does, and wins ties against the
        pool because it carries no fork/publish/IPC risk.
        ``REPRO_PARALLEL=always`` still forces the pool — it is an
        explicit operator override.
        """
        mode = self._parallel_mode()
        cores = usable_cores()
        workers = requested or 0
        effective = max(1, min(workers, cores, n_tasks))
        est_serial = probe_seconds * max(n_tasks - 1, 0)
        est_vector = vectorized_seconds

        def decision(run_mode: str, reason: str, est_p: float = 0.0):
            return self._record(
                RunDecision(
                    label=label,
                    n_tasks=n_tasks,
                    requested_workers=requested,
                    effective_workers=(
                        effective if run_mode == "parallel" else 1
                    ),
                    mode=run_mode,
                    reason=reason,
                    probe_seconds=probe_seconds,
                    est_serial_seconds=est_serial,
                    est_parallel_seconds=est_p,
                    est_vectorized_seconds=est_vector,
                )
            )

        vector_floor = (
            self.threshold_seconds() * _VECTORIZED_THRESHOLD_FRACTION
        )

        def no_pool(reason: str):
            if (
                est_serial >= vector_floor
                and est_vector < est_serial * _PARALLEL_MARGIN
            ):
                return decision("vectorized", reason)
            return decision("serial", reason)

        if n_tasks < 2:
            return decision("serial", "single-task")
        if _IN_WORKER:
            return no_pool("nested-in-worker")
        if mode == "always" and workers > 1:
            return decision("parallel", "REPRO_PARALLEL=always")
        if not workers or workers <= 1:
            return no_pool("workers<=1")
        if mode == "never":
            return no_pool("REPRO_PARALLEL=never")
        if cores < 2:
            return no_pool("single-core")

        overhead = _IPC_PER_TASK * (n_tasks - 1)
        if self._executor is None or self._executor_size != effective:
            per_worker = (
                _SPAWN_STARTUP_PER_WORKER
                if self._start_method == "spawn"
                else _FORK_STARTUP_PER_WORKER
            )
            overhead += per_worker * effective
        if not context_cached:
            overhead += _PUBLISH_SECONDS
        est_parallel = overhead + est_serial / effective

        if est_serial < self.threshold_seconds():
            # Too small to justify the pool — but the overhead-free
            # vectorized pass may still pay above its own lower floor.
            return no_pool("below-threshold")
        if (
            est_vector < est_serial * _PARALLEL_MARGIN
            and est_vector <= est_parallel
        ):
            return decision("vectorized", "cost-model", est_parallel)
        if est_parallel < est_serial * _PARALLEL_MARGIN:
            return decision("parallel", "cost-model", est_parallel)
        return decision("serial", "overhead-dominates", est_parallel)

    def _decide(
        self,
        label: str,
        n_tasks: int,
        requested: Optional[int],
        context_cached: bool,
        probe_seconds: float,
    ) -> RunDecision:
        mode = self._parallel_mode()
        cores = usable_cores()
        workers = requested or 0
        effective = max(1, min(workers, cores, n_tasks))

        def decision(run_mode: str, reason: str, est_s=0.0, est_p=0.0):
            return self._record(
                RunDecision(
                    label=label,
                    n_tasks=n_tasks,
                    requested_workers=requested,
                    effective_workers=effective if run_mode == "parallel"
                    else 1,
                    mode=run_mode,
                    reason=reason,
                    probe_seconds=probe_seconds,
                    est_serial_seconds=est_s,
                    est_parallel_seconds=est_p,
                )
            )

        if _IN_WORKER:
            return decision("serial", "nested-in-worker")
        if not workers or workers <= 1:
            return decision("serial", "workers<=1")
        if n_tasks < 2:
            return decision("serial", "single-task")
        if mode == "never":
            return decision("serial", "REPRO_PARALLEL=never")
        if mode == "always":
            return decision("parallel", "REPRO_PARALLEL=always")
        if min(workers, n_tasks) > 1 and cores < 2:
            # One usable core: extra processes only add overhead, so the
            # serial floor is exact — workers=N runs the workers=1 path.
            return decision("serial", "single-core")

        est_serial = probe_seconds * (n_tasks - 1)
        overhead = _IPC_PER_TASK * (n_tasks - 1)
        if self._executor is None or self._executor_size != effective:
            per_worker = (
                _SPAWN_STARTUP_PER_WORKER
                if self._start_method == "spawn"
                else _FORK_STARTUP_PER_WORKER
            )
            overhead += per_worker * effective
        if not context_cached:
            overhead += _PUBLISH_SECONDS
        est_parallel = overhead + est_serial / effective

        if est_serial < self.threshold_seconds():
            return decision(
                "serial", "below-threshold", est_serial, est_parallel
            )
        if est_parallel >= est_serial * _PARALLEL_MARGIN:
            return decision(
                "serial", "overhead-dominates", est_serial, est_parallel
            )
        return decision(
            "parallel", "cost-model", est_serial, est_parallel
        )

    # -- execution -----------------------------------------------------------

    def imap(
        self,
        fn: Callable,
        tasks: Iterable,
        context=None,
        workers: Optional[int] = None,
        label: str = "",
        probe_seconds: Optional[float] = None,
    ) -> Iterator:
        """Apply ``fn(context, task)`` to every task, yielding in order.

        ``fn`` must be a module-level function; results stream back in
        task order.  The first task is probed in-process to feed the
        cost model, then the batch either stays serial or fans out over
        the persistent pool — the results are identical either way.
        Callers that already measured a representative task (the
        engine's ``evaluate_many`` pre-probe) pass ``probe_seconds`` to
        skip the in-process probe; every task then rides the decided
        mode.
        """
        tasks = list(tasks)
        if workers is None:
            workers = default_workers()
        else:
            workers = validate_workers(workers)
        label = label or getattr(fn, "__name__", "batch")

        if not tasks:
            self._decide(label, 0, workers, True, 0.0)
            return
        tracer = current_tracer()
        if tracer is None:
            yield from self._run_batch(
                fn, tasks, context, workers, label, None, probe_seconds
            )
            return
        with tracer.span(
            f"runtime.{label}", cat="runtime",
            args={"n_tasks": len(tasks)},
        ) as batch_span:
            trace_ctx = (
                tracer.trace_id, batch_span.id, f"task:{label}"
            )
            yield from self._run_batch(
                fn, tasks, context, workers, label, trace_ctx,
                probe_seconds,
            )

    def _run_batch(
        self, fn, tasks, context, workers, label, trace_ctx,
        probe_seconds=None,
    ) -> Iterator:
        # Probe: run the first task in-process on the live context —
        # unless the caller measured a representative task itself.
        pre_probed = probe_seconds is not None
        if pre_probed:
            rest = tasks
        else:
            start = time.perf_counter()
            first = fn(context, tasks[0])
            probe_seconds = time.perf_counter() - start
            get_metrics().observe(
                "runtime.probe_seconds", probe_seconds
            )

        key = self._context_key(context) if context is not None else None
        context_cached = (
            key is not None and key in self._ctx_cache
        ) or context is None
        decision = self._decide(
            label, len(tasks), workers, context_cached, probe_seconds
        )
        if not pre_probed:
            yield first
            rest = tasks[1:]
        if not rest:
            return
        if decision.mode == "serial":
            for task in rest:
                yield fn(context, task)
            return
        yield from self._run_parallel(
            fn, rest, context, decision, trace_ctx
        )

    def map(
        self,
        fn: Callable,
        tasks: Iterable,
        context=None,
        workers: Optional[int] = None,
        label: str = "",
        probe_seconds: Optional[float] = None,
    ) -> List:
        """:meth:`imap`, collected into a list."""
        return list(
            self.imap(fn, tasks, context=context, workers=workers,
                      label=label, probe_seconds=probe_seconds)
        )

    def _run_parallel(
        self, fn, tasks, context, decision, trace_ctx=None
    ) -> Iterator:
        from concurrent.futures.process import BrokenProcessPool

        ref = self.publish(context)
        executor = self._get_executor(decision.effective_workers)
        payloads = [(fn, ref, task, trace_ctx) for task in tasks]
        try:
            for result, delta in executor.map(_call_task, payloads):
                if delta is not None:
                    absorb_worker_delta(delta)
                yield result
        except (BrokenProcessPool, KeyboardInterrupt):
            # A dead worker (or an interrupt) poisons the pool; discard
            # it so the next batch starts from a clean one.  Tracked
            # segments stay owned by this runtime and are unlinked on
            # close()/exit.
            self._shutdown_executor(wait=False)
            raise


# ---------------------------------------------------------------------------
# Process-wide singleton.
# ---------------------------------------------------------------------------

_RUNTIME: Optional[ParallelRuntime] = None
_RUNTIME_LOCK = threading.Lock()


def get_runtime() -> ParallelRuntime:
    """The process-wide :class:`ParallelRuntime` (created on first use)."""
    global _RUNTIME
    with _RUNTIME_LOCK:
        if _RUNTIME is None or _RUNTIME._owner_pid != os.getpid():
            _RUNTIME = ParallelRuntime()
            atexit.register(_RUNTIME.close)
        return _RUNTIME


def reset_runtime() -> None:
    """Close and forget the singleton (test isolation helper)."""
    global _RUNTIME
    with _RUNTIME_LOCK:
        if _RUNTIME is not None:
            _RUNTIME.close()
            _RUNTIME = None
