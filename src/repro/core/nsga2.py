"""NSGA-II over configuration space — an alternative model-based explorer.

The paper uses a Pareto-archive hill climber (Algorithm 1) because the
number of candidate solutions is enormous; a population-based
multi-objective GA is the obvious alternative and is provided here as an
extension.  Objectives are the same model estimates (QoR maximised, HW
cost minimised); genomes are configurations; crossover is uniform
per-slot gene exchange and mutation re-draws single genes.

Reference: Deb et al., "A fast and elitist multiobjective genetic
algorithm: NSGA-II", IEEE TEC 2002.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.configuration import Configuration, ConfigurationSpace
from repro.core.dse import DSEResult
from repro.core.modeling import EstimationModel
from repro.core.pareto import pareto_front_indices
from repro.errors import DSEError
from repro.utils.rng import RngLike, ensure_rng


def fast_non_dominated_sort(points: np.ndarray) -> List[np.ndarray]:
    """Partition ``points`` (minimisation) into non-domination fronts."""
    n = points.shape[0]
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = np.zeros(n, dtype=np.int64)
    for i in range(n):
        p = points[i]
        beats = np.all(p <= points, axis=1) & np.any(p < points, axis=1)
        beaten = np.all(points <= p, axis=1) & np.any(points < p, axis=1)
        dominated_by[i] = np.nonzero(beats)[0].tolist()
        domination_count[i] = int(beaten.sum())
    fronts: List[np.ndarray] = []
    current = np.nonzero(domination_count == 0)[0]
    while current.size:
        fronts.append(current)
        next_front: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current = np.asarray(sorted(set(next_front)), dtype=np.int64)
    return fronts


def crowding_distance(points: np.ndarray) -> np.ndarray:
    """Crowding distance of each point within one front."""
    n, m = points.shape
    distance = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for k in range(m):
        order = np.argsort(points[:, k])
        span = points[order[-1], k] - points[order[0], k]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span <= 0:
            continue
        gaps = (points[order[2:], k] - points[order[:-2], k]) / span
        distance[order[1:-1]] += gaps
    return distance


def _tournament(rank, crowd, rng, count):
    """Binary tournament selection indices (lower rank, higher crowding)."""
    n = rank.shape[0]
    a = rng.integers(0, n, size=count)
    b = rng.integers(0, n, size=count)
    better_rank = rank[a] < rank[b]
    tie = rank[a] == rank[b]
    better_crowd = crowd[a] > crowd[b]
    pick_a = better_rank | (tie & better_crowd)
    return np.where(pick_a, a, b)


def nsga2_search(
    space: ConfigurationSpace,
    qor_model: EstimationModel,
    hw_model: EstimationModel,
    population_size: int = 100,
    generations: int = 50,
    crossover_prob: float = 0.9,
    mutation_prob: float = 0.2,
    rng: RngLike = 0,
) -> DSEResult:
    """NSGA-II exploration returning the final population's Pareto front.

    Total model evaluations: ``population_size * (generations + 1)``.
    """
    if population_size < 4 or population_size % 2:
        raise DSEError("population_size must be an even number >= 4")
    if generations < 1:
        raise DSEError("generations must be >= 1")
    gen = ensure_rng(rng)
    sizes = np.asarray(space.slot_sizes())
    n_slots = space.n_slots

    population = np.stack(
        [space.random_configuration(gen) for _ in range(population_size)]
    ).astype(np.int64)

    def estimate(genomes: np.ndarray) -> np.ndarray:
        qor = qor_model.predict(genomes)
        cost = hw_model.predict(genomes)
        return np.stack([-qor, cost], axis=1)  # minimisation space

    objectives = estimate(population)
    evaluations = population_size

    for _ in range(generations):
        fronts = fast_non_dominated_sort(objectives)
        rank = np.empty(population_size, dtype=np.int64)
        crowd = np.empty(population_size)
        for level, front in enumerate(fronts):
            rank[front] = level
            crowd[front] = crowding_distance(objectives[front])

        parents = _tournament(rank, crowd, gen, population_size)
        children = population[parents].copy()
        # uniform crossover on consecutive pairs
        for i in range(0, population_size, 2):
            if gen.random() < crossover_prob:
                swap = gen.random(n_slots) < 0.5
                tmp = children[i, swap].copy()
                children[i, swap] = children[i + 1, swap]
                children[i + 1, swap] = tmp
        # per-gene mutation: redraw uniformly
        mutate = gen.random(children.shape) < (mutation_prob / n_slots)
        redraw = (gen.random(children.shape) * sizes).astype(np.int64)
        children = np.where(mutate, redraw, children)

        child_obj = estimate(children)
        evaluations += population_size

        merged = np.vstack([population, children])
        merged_obj = np.vstack([objectives, child_obj])
        fronts = fast_non_dominated_sort(merged_obj)
        chosen: List[int] = []
        for front in fronts:
            if len(chosen) + front.size <= population_size:
                chosen.extend(front.tolist())
            else:
                crowd = crowding_distance(merged_obj[front])
                order = front[np.argsort(-crowd)]
                chosen.extend(
                    order[: population_size - len(chosen)].tolist()
                )
                break
        population = merged[chosen]
        objectives = merged_obj[chosen]

    front_idx = pareto_front_indices(objectives)
    unique: dict = {}
    for i in front_idx:
        unique[tuple(int(g) for g in population[i])] = i
    configs = list(unique.keys())
    idx = np.asarray(list(unique.values()), dtype=np.int64)
    points = np.stack(
        [-objectives[idx, 0], objectives[idx, 1]], axis=1
    )
    return DSEResult(
        configs=configs,
        points=points,
        evaluations=evaluations,
        inserts=len(configs),
        restarts=0,
    )
