"""NSGA-II over configuration space — an alternative model-based explorer.

The paper uses a Pareto-archive hill climber (Algorithm 1) because the
number of candidate solutions is enormous; a population-based
multi-objective GA is the obvious alternative and is provided here as an
extension.  Objectives are the same model estimates (QoR maximised, HW
cost minimised); genomes are configurations; crossover is uniform
per-slot gene exchange and mutation re-draws single genes.

Reference: Deb et al., "A fast and elitist multiobjective genetic
algorithm: NSGA-II", IEEE TEC 2002.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.budget import EvaluationBudget, MeteredEstimator
from repro.core.configuration import Configuration, ConfigurationSpace
from repro.core.dse import DSEResult
from repro.core.modeling import EstimationModel
from repro.core.pareto import pareto_front_indices
from repro.errors import DSEError
from repro.utils.rng import RngLike, ensure_rng


def fast_non_dominated_sort(points: np.ndarray) -> List[np.ndarray]:
    """Partition ``points`` (minimisation) into non-domination fronts.

    Fully vectorised: one broadcasted pass builds the pairwise
    domination matrix, then each front is peeled off with matrix
    reductions instead of the classic per-point Python loops.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if n == 0:
        return []
    le = np.all(points[:, None, :] <= points[None, :, :], axis=2)
    lt = np.any(points[:, None, :] < points[None, :, :], axis=2)
    beats = le & lt  # beats[i, j]: point i dominates point j
    domination_count = beats.sum(axis=0)
    fronts: List[np.ndarray] = []
    while True:
        current = np.nonzero(domination_count == 0)[0]
        if current.size == 0:
            break
        fronts.append(current)
        domination_count = domination_count - beats[current].sum(axis=0)
        domination_count[current] = -1  # assigned; never zero again
    return fronts


def crowding_distance(points: np.ndarray) -> np.ndarray:
    """Crowding distance of each point within one front."""
    n, m = points.shape
    distance = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for k in range(m):
        order = np.argsort(points[:, k])
        span = points[order[-1], k] - points[order[0], k]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span <= 0:
            continue
        gaps = (points[order[2:], k] - points[order[:-2], k]) / span
        distance[order[1:-1]] += gaps
    return distance


def _tournament(rank, crowd, rng, count):
    """Binary tournament selection indices (lower rank, higher crowding).

    Exact ties — equal rank *and* equal crowding, the common case when
    both contestants carry infinite boundary crowding — are broken by a
    fair coin: always awarding them to one side skews selection
    pressure toward arbitrary population positions.
    """
    n = rank.shape[0]
    a = rng.integers(0, n, size=count)
    b = rng.integers(0, n, size=count)
    better_rank = rank[a] < rank[b]
    tie = rank[a] == rank[b]
    better_crowd = crowd[a] > crowd[b]
    full_tie = tie & (crowd[a] == crowd[b])
    coin = rng.random(size=count) < 0.5
    pick_a = better_rank | (tie & better_crowd) | (full_tie & coin)
    return np.where(pick_a, a, b)


def make_offspring(
    space: ConfigurationSpace,
    population: np.ndarray,
    rank: np.ndarray,
    crowd: np.ndarray,
    rng: RngLike,
    crossover_prob: float = 0.9,
    mutation_prob: float = 0.2,
) -> np.ndarray:
    """One generation of NSGA-II offspring from a ranked population.

    Binary tournament selection (lower rank, higher crowding, fair
    coin on full ties), uniform per-slot crossover on consecutive
    pairs, then per-gene mutation that redraws genes uniformly from
    the slot's candidate list.  This is the exact variation operator
    of :func:`nsga2_search` — split out so benchmarks and other
    explorers can build realistic generation batches; for a given RNG
    state it consumes the same draws in the same order as the
    in-loop code it replaced, so trajectories are unchanged.
    """
    gen = ensure_rng(rng)
    population = np.asarray(population, dtype=np.int64)
    population_size = population.shape[0]
    if population_size < 2 or population_size % 2:
        raise DSEError("offspring need an even population of >= 2")
    sizes = np.asarray(space.slot_sizes())
    n_slots = space.n_slots
    if population.shape[1] != n_slots:
        raise DSEError(
            f"genome width {population.shape[1]} != {n_slots} slots"
        )
    parents = _tournament(
        np.asarray(rank), np.asarray(crowd), gen, population_size
    )
    children = population[parents].copy()
    # uniform crossover on consecutive pairs
    for i in range(0, population_size, 2):
        if gen.random() < crossover_prob:
            swap = gen.random(n_slots) < 0.5
            tmp = children[i, swap].copy()
            children[i, swap] = children[i + 1, swap]
            children[i + 1, swap] = tmp
    # per-gene mutation: redraw uniformly
    mutate = gen.random(children.shape) < (mutation_prob / n_slots)
    redraw = (gen.random(children.shape) * sizes).astype(np.int64)
    return np.where(mutate, redraw, children)


def nsga2_search(
    space: ConfigurationSpace,
    qor_model: EstimationModel,
    hw_model: EstimationModel,
    population_size: int = 100,
    generations: int = 50,
    crossover_prob: float = 0.9,
    mutation_prob: float = 0.2,
    rng: RngLike = 0,
    budget: Optional[EvaluationBudget] = None,
    workers: Optional[int] = None,
    seeds: Optional[Sequence[Configuration]] = None,
) -> DSEResult:
    """NSGA-II exploration returning the final population's Pareto front.

    Total model evaluations: ``population_size * (generations + 1)``,
    or fewer under an explicit ``budget`` — the search stops before any
    generation the budget cannot fully fund, and every model call is
    metered so ``DSEResult.evaluations`` is exact.

    ``seeds`` pre-loads the initial population (truncated to the
    population size, padded with random configurations) — the portfolio
    runner's migration channel.  ``workers > 1`` predicts objective
    batches in parallel worker processes; chunk outputs are
    concatenated in submission order, so results are bit-identical to
    the serial path for a fixed RNG seed.
    """
    if population_size < 4 or population_size % 2:
        raise DSEError("population_size must be an even number >= 4")
    if generations < 1:
        raise DSEError("generations must be >= 1")
    if budget is None:
        budget = EvaluationBudget(population_size * (generations + 1))
    gen = ensure_rng(rng)

    initial: List[Configuration] = []
    if seeds:
        initial = [tuple(c) for c in seeds[:population_size]]
    initial += [
        space.random_configuration(gen)
        for _ in range(population_size - len(initial))
    ]
    population = np.stack(initial).astype(np.int64)

    if budget.grant(population_size) < population_size:
        raise DSEError(
            "evaluation budget cannot fund one NSGA-II population"
        )
    estimator = MeteredEstimator(
        qor_model, hw_model, budget, workers=workers
    )

    def estimate(genomes: np.ndarray) -> np.ndarray:
        est = estimator.estimate(genomes)
        return np.stack([-est[:, 0], est[:, 1]], axis=1)  # minimised

    with estimator:
        objectives = estimate(population)
        population, objectives = _evolve(
            space, population, objectives, estimate, gen,
            population_size, generations, crossover_prob,
            mutation_prob, budget,
        )

    front_idx = pareto_front_indices(objectives)
    unique: dict = {}
    for i in front_idx:
        unique[tuple(int(g) for g in population[i])] = i
    configs = list(unique.keys())
    idx = np.asarray(list(unique.values()), dtype=np.int64)
    points = np.stack(
        [-objectives[idx, 0], objectives[idx, 1]], axis=1
    )
    return DSEResult(
        configs=configs,
        points=points,
        evaluations=estimator.count,
        inserts=len(configs),
        restarts=0,
    )


def _evolve(
    space,
    population,
    objectives,
    estimate,
    gen,
    population_size,
    generations,
    crossover_prob,
    mutation_prob,
    budget,
):
    """The NSGA-II generation loop (split out for readability)."""
    for _ in range(generations):
        if budget.grant(population_size) < population_size:
            break
        fronts = fast_non_dominated_sort(objectives)
        rank = np.empty(population_size, dtype=np.int64)
        crowd = np.empty(population_size)
        for level, front in enumerate(fronts):
            rank[front] = level
            crowd[front] = crowding_distance(objectives[front])

        children = make_offspring(
            space, population, rank, crowd, gen,
            crossover_prob, mutation_prob,
        )
        child_obj = estimate(children)

        merged = np.vstack([population, children])
        merged_obj = np.vstack([objectives, child_obj])
        fronts = fast_non_dominated_sort(merged_obj)
        chosen: List[int] = []
        for front in fronts:
            if len(chosen) + front.size <= population_size:
                chosen.extend(front.tolist())
            else:
                crowd = crowding_distance(merged_obj[front])
                order = front[np.argsort(-crowd)]
                chosen.extend(
                    order[: population_size - len(chosen)].tolist()
                )
                break
        population = merged[chosen]
        objectives = merged_obj[chosen]
    return population, objectives
