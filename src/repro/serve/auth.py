"""API-key authentication and per-key metering for ``repro serve``.

Keys are declared as comma-separated specs (CLI ``--keys`` or the
``REPRO_SERVE_KEYS`` environment variable)::

    name=secret:budget,name2=secret2,secret3

Each entry is ``[name=]secret[:budget]``.  ``name`` labels the account
in job documents and ledger manifests (default: a short digest of the
secret, so the secret itself never appears anywhere persistent);
``budget`` caps the account's total model evaluations through one
shared, thread-safe :class:`~repro.core.budget.EvaluationBudget`
(absent: unlimited, spend still tracked).

With no keys configured the server runs *open*: every request maps to
one anonymous unlimited account.  With keys configured, requests must
present a known secret via ``Authorization: Bearer <secret>`` or
``X-Api-Key: <secret>`` — anything else is a 401.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.budget import EvaluationBudget
from repro.errors import ValidationError

#: Environment knob: comma-separated API-key specs.
SERVE_KEYS_ENV = "REPRO_SERVE_KEYS"


def _key_id(secret: str) -> str:
    """Short stable digest identifying a secret without revealing it."""
    return hashlib.sha256(secret.encode("utf-8")).hexdigest()[:12]


@dataclass
class ClientAccount:
    """One authenticated API client and its evaluation meter."""

    name: str
    key_id: str
    budget: EvaluationBudget = field(default_factory=EvaluationBudget)
    jobs_submitted: int = 0

    @property
    def unlimited(self) -> bool:
        return self.budget.total is None

    def doc(self) -> Dict[str, object]:
        """The account's public (secret-free) JSON view."""
        return {
            "name": self.name,
            "key_id": self.key_id,
            "budget": self.budget.total,
            "spent": self.budget.spent,
            "jobs_submitted": self.jobs_submitted,
        }


def parse_key_spec(entry: str) -> tuple:
    """Parse one ``[name=]secret[:budget]`` spec into its parts.

    Raises :class:`~repro.errors.ValidationError` on empty secrets or
    non-integer budgets, naming the offending entry.
    """
    text = entry.strip()
    name = None
    if "=" in text:
        name, text = text.split("=", 1)
        name = name.strip()
        if not name:
            raise ValidationError(
                f"API-key spec {entry!r} has an empty account name"
            )
    budget = None
    if ":" in text:
        text, raw_budget = text.rsplit(":", 1)
        from repro.utils.validation import check_env_int

        budget = check_env_int(
            raw_budget, source=f"API-key budget in {entry!r}", minimum=1
        )
    secret = text.strip()
    if not secret:
        raise ValidationError(
            f"API-key spec {entry!r} has an empty secret"
        )
    return name or _key_id(secret), secret, budget


class ApiKeyRegistry:
    """Secrets -> accounts; constant accounts, constant-time compare."""

    def __init__(self, specs: Optional[str] = None):
        self._accounts: Dict[str, ClientAccount] = {}
        self._anonymous = ClientAccount(
            name="anonymous", key_id="anonymous"
        )
        for entry in (specs or "").split(","):
            if not entry.strip():
                continue
            name, secret, budget = parse_key_spec(entry)
            if secret in self._accounts:
                raise ValidationError(
                    f"duplicate API-key secret for account {name!r}"
                )
            self._accounts[secret] = ClientAccount(
                name=name,
                key_id=_key_id(secret),
                budget=EvaluationBudget(budget),
            )

    @classmethod
    def from_env(cls) -> "ApiKeyRegistry":
        return cls(os.environ.get(SERVE_KEYS_ENV))

    @property
    def enabled(self) -> bool:
        """Whether authentication is required (any key configured)."""
        return bool(self._accounts)

    @property
    def accounts(self) -> List[ClientAccount]:
        return list(self._accounts.values())

    def authenticate(self, secret: Optional[str]) -> Optional[ClientAccount]:
        """The account of ``secret``, or ``None`` (=> 401).

        Open mode (no keys configured) maps every request — with or
        without a credential — to the shared anonymous account.
        """
        if not self.enabled:
            return self._anonymous
        if not secret:
            return None
        for known, account in self._accounts.items():
            if hmac.compare_digest(
                known.encode("utf-8"), secret.encode("utf-8")
            ):
                return account
        return None
