"""Job model of the serving layer: requests, lifecycle, result docs.

A *job* is one client submission — a (workload, quality-target,
evaluation-budget) triple plus the pipeline parameters that identify
its inputs.  Jobs are content-addressed by :meth:`JobRequest.job_key`,
the coalescing and warm-cache unit: two jobs with the same key are the
same computation, however many clients ask for it.

State machine::

    queued -> running -> done
                      -> failed

All mutation happens on the server's event-loop thread (the coordinator
marshals executor results back onto the loop), so async handlers can
read jobs without locking; :class:`JobBoard` provides the loop-side
registry plus an :class:`asyncio.Condition` for pollers and streamers
to wait on transitions.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.workloads import WORKLOADS

#: Terminal-or-not job states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

TERMINAL = (DONE, FAILED)

#: How a finished job got its result (the cache temperature).
SOURCE_COLD = "cold"          # this job triggered the pipeline pass
SOURCE_COALESCED = "coalesced"  # shared a concurrent identical pass
SOURCE_MEMORY = "memory"      # answered from the coordinator cache
SOURCE_STORE = "store"        # pipeline ran, every stage store-hit


def _check_number(payload: Dict, key: str, default, kind, minimum=None,
                  maximum=None):
    """One validated numeric field of a submission payload."""
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(
            f"job field {key!r} must be a number, got {value!r}"
        )
    if kind is int and not float(value).is_integer():
        raise ValidationError(
            f"job field {key!r} must be an integer, got {value!r}"
        )
    value = kind(value)
    if minimum is not None and value < minimum:
        raise ValidationError(
            f"job field {key!r} must be >= {minimum}, got {value}"
        )
    if maximum is not None and value > maximum:
        raise ValidationError(
            f"job field {key!r} must be <= {maximum}, got {value}"
        )
    return value


@dataclass(frozen=True)
class JobRequest:
    """A validated submission: what to run and how hard to try."""

    workload: str
    quality_target: Optional[float] = None
    evals: int = 2_000
    scale: Optional[float] = None
    images: int = 2
    train: int = 24
    seed: int = 0

    #: Fields accepted from a submission payload (anything else is a
    #: client error — catching typos like "budgets" early beats running
    #: the wrong job).
    FIELDS = (
        "workload", "quality_target", "evals", "scale", "images",
        "train", "seed",
    )

    @classmethod
    def from_payload(cls, payload: object) -> "JobRequest":
        if not isinstance(payload, dict):
            raise ValidationError(
                f"job submission must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        unknown = sorted(set(payload) - set(cls.FIELDS))
        if unknown:
            raise ValidationError(
                f"unknown job field(s) {unknown}; accepted: "
                f"{list(cls.FIELDS)}"
            )
        workload = payload.get("workload")
        if not isinstance(workload, str) or workload not in WORKLOADS:
            raise ValidationError(
                f"job field 'workload' must name a registered workload "
                f"(see /v1/workloads), got {workload!r}"
            )
        return cls(
            workload=workload,
            quality_target=_check_number(
                payload, "quality_target", None, float,
                minimum=0.0, maximum=1.0,
            ),
            evals=_check_number(payload, "evals", 2_000, int, minimum=1),
            scale=_check_number(payload, "scale", None, float, minimum=0.0),
            images=_check_number(payload, "images", 2, int, minimum=1),
            train=_check_number(payload, "train", 24, int, minimum=4),
            seed=_check_number(payload, "seed", 0, int, minimum=0),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "quality_target": self.quality_target,
            "evals": self.evals,
            "scale": self.scale,
            "images": self.images,
            "train": self.train,
            "seed": self.seed,
        }

    def job_key(self) -> str:
        """Content address of the computation (coalescing/cache unit).

        The quality target is deliberately excluded: it is a cheap
        post-filter over the Pareto front, so clients asking for
        different targets on the same pipeline inputs share one pass.
        """
        from repro.store.hashing import content_hash

        payload = self.as_dict()
        payload.pop("quality_target")
        return content_hash({"serve-job": payload})


def select_operating_point(
    front: List[List[float]], quality_target: Optional[float]
) -> Dict[str, object]:
    """The front member a quality target selects.

    Picks the smallest-area configuration whose SSIM meets the target;
    when nothing on the front qualifies, reports the best-quality point
    with ``target_met: false`` so clients still get an actionable
    answer.
    """
    if not front:
        return {"target_met": False, "point": None}
    points = np.asarray(front, dtype=float)
    if quality_target is None:
        best = int(points[:, 1].argmin())
        return {
            "target_met": True,
            "point": [float(points[best, 0]), float(points[best, 1])],
        }
    meets = points[:, 0] >= quality_target
    if meets.any():
        eligible = np.where(meets)[0]
        best = int(eligible[points[eligible, 1].argmin()])
        return {
            "target_met": True,
            "point": [float(points[best, 0]), float(points[best, 1])],
        }
    best = int(points[:, 0].argmax())
    return {
        "target_met": False,
        "point": [float(points[best, 0]), float(points[best, 1])],
    }


def job_result_doc(request: JobRequest, setup, result) -> Dict[str, object]:
    """The client-facing result document of one finished pipeline run.

    The ``front`` rows are exactly those of the offline ``repro
    workloads run --json`` path (same ordering, same floats), so a
    client cannot tell whether its answer was computed cold, coalesced
    or served warm.
    """
    order = result.final_points[:, 1].argsort()
    front = [
        [float(s), float(a)] for s, a in result.final_points[order]
    ]
    return {
        "workload": request.workload,
        "run_id": result.run_id,
        "runs_per_config": setup.bundle.run_count,
        "space": result.summary_row(),
        "models": {
            "qor": {
                "name": result.qor_model.name,
                "fidelity_test": result.qor_model.fidelity_test,
            },
            "hw": {
                "name": result.hw_model.name,
                "fidelity_test": result.hw_model.fidelity_test,
            },
        },
        "stage_cache": result.stage_cache,
        "engine_stats": result.engine_stats,
        "front": front,
        "selected": select_operating_point(
            front, request.quality_target
        ),
    }


@dataclass
class Job:
    """One submission's lifecycle record."""

    id: str
    request: JobRequest
    account_name: str
    key_id: str
    status: str = QUEUED
    source: Optional[str] = None
    result: Optional[Dict] = None
    error: Optional[str] = None
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL

    def doc(self, include_result: bool = True) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "job_id": self.id,
            "status": self.status,
            "workload": self.request.workload,
            "request": self.request.as_dict(),
            "account": self.account_name,
            "source": self.source,
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "seconds": (
                round(self.finished_at - self.created_at, 6)
                if self.finished_at is not None else None
            ),
        }
        if include_result:
            doc["result"] = self.result
        return doc


class JobBoard:
    """Loop-side job registry with transition signalling."""

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}
        self._seq = 0
        self.changed = asyncio.Condition()

    def new_id(self) -> str:
        self._seq += 1
        return f"job-{self._seq:06d}"

    def add(self, job: Job) -> None:
        self._jobs[job.id] = job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs_for(self, key_id: Optional[str] = None) -> List[Job]:
        """Jobs newest-first, optionally restricted to one API key."""
        jobs = [
            job for job in self._jobs.values()
            if key_id is None or job.key_id == key_id
        ]
        jobs.sort(key=lambda j: j.created_at, reverse=True)
        return jobs

    def __len__(self) -> int:
        return len(self._jobs)

    async def notify(self) -> None:
        """Wake everything waiting on a job transition."""
        async with self.changed:
            self.changed.notify_all()

    async def wait_for_terminal(
        self, job: Job, timeout: Optional[float]
    ) -> bool:
        """Block until ``job`` finishes (or ``timeout`` seconds pass)."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while not job.terminal:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
            async with self.changed:
                try:
                    await asyncio.wait_for(
                        self.changed.wait(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    return False
        return True
