"""Approximation-as-a-service: the ``repro serve`` HTTP layer.

Clients submit (workload, quality-target, budget) jobs over a small
JSON API; the coordinator coalesces concurrent identical requests into
single pipeline passes, answers warm queries from the in-memory and
persistent caches, meters every API key through a thread-safe
:class:`~repro.core.budget.EvaluationBudget`, and records each job in
the :class:`~repro.store.ledger.RunLedger`.
"""

from repro.serve.auth import (
    SERVE_KEYS_ENV,
    ApiKeyRegistry,
    ClientAccount,
    parse_key_spec,
)
from repro.serve.coordinator import Coordinator
from repro.serve.jobs import (
    Job,
    JobBoard,
    JobRequest,
    job_result_doc,
    select_operating_point,
)
from repro.serve.server import (
    DEFAULT_PORT,
    SERVE_PORT_ENV,
    ServeApp,
    ServerThread,
    default_port,
    serve_forever,
)

__all__ = [
    "SERVE_KEYS_ENV",
    "SERVE_PORT_ENV",
    "DEFAULT_PORT",
    "ApiKeyRegistry",
    "ClientAccount",
    "Coordinator",
    "Job",
    "JobBoard",
    "JobRequest",
    "ServeApp",
    "ServerThread",
    "default_port",
    "job_result_doc",
    "parse_key_spec",
    "select_operating_point",
    "serve_forever",
]
