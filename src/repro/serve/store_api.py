"""The ``/v1/store/*`` API — one server as a shared artifact store.

Mounted by :class:`~repro.serve.server.ServeApp` when ``repro serve``
has an experiment store attached; every endpoint is auth-gated by the
same API keys as the job API.  The wire protocol is what
:class:`~repro.store.remote.RemoteBackend` speaks:

====== ================================== ============================
Method Path                               Meaning
====== ================================== ============================
GET    ``/v1/store/stat``                 store identity + per-kind stats
GET    ``/v1/store/keys[?kind=K]``        indexed artifacts (kind, key,
                                          sha256, size)
GET    ``/v1/store/blob/<kind>/<key>``    blob bytes, streamed, with an
                                          ``ETag`` of the content hash
PUT    ``/v1/store/blob/<kind>/<key>``    store bytes (idempotent:
                                          content-addressed); returns
                                          the digest the server indexed
DELETE ``/v1/store/blob/<kind>/<key>``    evict one entry
POST   ``/v1/store/gc``                   garbage-collect; body carries
                                          ``referenced`` /
                                          ``keep_kinds`` / ``dry_run``
GET    ``/v1/store/runs``                 every run-ledger manifest
GET    ``/v1/store/runs/<id>``            one manifest
PUT    ``/v1/store/runs/<id>``            write one manifest
DELETE ``/v1/store/runs/<id>``            drop one manifest
====== ================================== ============================

Blob bodies bypass the small JSON request cap (they stream in and out
in chunks, bounded by :data:`MAX_STORE_BODY`), and identifiers are
validated against a conservative charset so a remote key can never
escape the blob tree.
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import Dict, Optional

from repro.telemetry import get_metrics

#: Upper bound on a store request body (blobs and gc root sets).
MAX_STORE_BODY = 64 * 1024 * 1024

#: Streaming chunk size for blob request/response bodies.
_CHUNK = 64 * 1024

#: Safe identifier charsets: no separators, no leading dot — a remote
#: kind/key can never traverse out of ``objects/``.
_IDENT = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")
_EXT = re.compile(r"^[A-Za-z0-9]{1,8}$")


class HttpError(Exception):
    """An error with a client-facing status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _ident(value: str, what: str) -> str:
    if not _IDENT.match(value):
        raise HttpError(400, f"invalid {what} {value!r}")
    return value


async def _read_body(reader, headers: Dict[str, str],
                     limit: int) -> bytes:
    """Read a Content-Length framed body in chunks, bounded by ``limit``."""
    length = headers.get("content-length")
    if length is None:
        return b""
    try:
        n = int(length)
    except ValueError:
        raise HttpError(400, "bad Content-Length") from None
    if n < 0:
        raise HttpError(400, "bad Content-Length")
    if n > limit:
        # Drain the oversize body (bounded by what the sender actually
        # wrote) so the client reads a clean 413 instead of a
        # connection reset mid-upload.
        remaining = n
        while remaining > 0:
            chunk = await reader.read(min(_CHUNK, remaining))
            if not chunk:
                break
            remaining -= len(chunk)
        raise HttpError(413, "request body too large")
    body = bytearray()
    while len(body) < n:
        chunk = await reader.read(min(_CHUNK, n - len(body)))
        if not chunk:
            raise HttpError(400, "truncated request body")
        body.extend(chunk)
    return bytes(body)


class StoreApi:
    """Routes under ``/v1/store`` against the coordinator's store.

    Store calls are synchronous (sqlite + file IO) and run on the event
    loop's default executor so a slow disk never stalls the listener;
    the backends are thread-safe (see
    :class:`~repro.store.backends.SqliteBackend`).
    """

    def __init__(self, app) -> None:
        self._app = app  # ServeApp; store is late-bound via coordinator

    def _store(self):
        store = self._app.coordinator.store
        if store is None:
            raise HttpError(404, "no experiment store attached")
        return store

    @staticmethod
    async def _call(fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, fn, *args)

    async def handle(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        reader,
        writer,
    ) -> Optional[Dict]:
        """Serve one store request.

        Returns the JSON document to send with status 200, or ``None``
        when the response (a streamed blob) was already written.
        """
        get_metrics().inc("serve.store_requests")
        store = self._store()
        parts = [part for part in path.split("/") if part]
        tail = parts[2:]  # after 'v1', 'store'
        if tail == ["stat"] and method == "GET":
            return {
                "store": {
                    "uri": store.uri,
                    "scheme": store.backend.scheme,
                    "kinds": await self._call(store.stats),
                }
            }
        if tail == ["keys"] and method == "GET":
            kind = query.get("kind")
            if kind is not None:
                _ident(kind, "kind")
            refs = await self._call(store.backend.iter_refs, kind)
            return {
                "artifacts": [
                    {
                        "kind": ref.kind,
                        "key": ref.key,
                        "sha256": ref.sha256,
                        "size": ref.size,
                    }
                    for ref in refs
                ]
            }
        if len(tail) == 3 and tail[0] == "blob":
            kind = _ident(tail[1], "kind")
            key = _ident(tail[2], "key")
            return await self._blob(
                method, store, kind, key, headers, reader, writer
            )
        if tail == ["gc"] and method == "POST":
            return await self._gc(store, headers, reader)
        if tail and tail[0] == "runs":
            return await self._runs(
                method, store, tail[1:], headers, reader
            )
        raise HttpError(404, f"no store route for {method} {path}")

    # -- blobs ---------------------------------------------------------------

    async def _blob(
        self, method, store, kind, key, headers, reader, writer
    ) -> Optional[Dict]:
        backend = store.backend
        ext = store._codec(kind).ext
        if method == "GET":
            data = await self._call(
                backend.get_bytes, kind, key, ext
            )
            if data is None:
                raise HttpError(404, f"no artifact {kind}/{key}")
            import hashlib

            await self._stream_blob(
                writer, data, hashlib.sha256(data).hexdigest()
            )
            return None
        if method == "PUT":
            requested = headers.get("x-repro-ext")
            if requested is not None:
                if not _EXT.match(requested):
                    raise HttpError(400,
                                    f"invalid ext {requested!r}")
                ext = requested
            meta = None
            raw_meta = headers.get("x-repro-meta")
            if raw_meta:
                try:
                    meta = json.loads(raw_meta)
                except json.JSONDecodeError:
                    raise HttpError(
                        400, "X-Repro-Meta must be JSON"
                    ) from None
            data = await _read_body(reader, headers, MAX_STORE_BODY)
            ref = await self._call(
                backend.put_bytes, kind, key, data, ext, meta
            )
            return {"sha256": ref.sha256, "size": ref.size}
        if method == "DELETE":
            await self._call(backend.delete, kind, key, ext)
            return {"deleted": f"{kind}/{key}"}
        raise HttpError(405, "blob endpoints are GET/PUT/DELETE")

    @staticmethod
    async def _stream_blob(writer, data: bytes, digest: str) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/octet-stream\r\n"
            f"Content-Length: {len(data)}\r\n"
            f'ETag: "{digest}"\r\n'
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        for start in range(0, len(data), _CHUNK):
            writer.write(data[start:start + _CHUNK])
            await writer.drain()

    # -- maintenance ---------------------------------------------------------

    async def _gc(self, store, headers, reader) -> Dict:
        body = await _read_body(reader, headers, MAX_STORE_BODY)
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise HttpError(400, "gc body must be JSON") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "gc body must be a JSON object")
        try:
            referenced = [
                (str(kind), str(key))
                for kind, key in payload.get("referenced", [])
            ]
        except (TypeError, ValueError):
            raise HttpError(
                400, "referenced must be [kind, key] pairs"
            ) from None
        keep_kinds = payload.get("keep_kinds")
        stats = await self._call(
            store.gc, referenced, keep_kinds,
            bool(payload.get("dry_run", False)),
        )
        return {"gc": stats}

    # -- run-ledger manifests ------------------------------------------------

    async def _runs(
        self, method, store, tail, headers, reader
    ) -> Dict:
        backend = store.backend
        if not tail:
            if method != "GET":
                raise HttpError(405, "run listing is GET-only")
            return {
                "runs": await self._call(backend.list_manifests)
            }
        if len(tail) != 1:
            raise HttpError(404, "no such store route")
        run_id = _ident(tail[0], "run id")
        if method == "GET":
            manifest = await self._call(
                backend.get_manifest, run_id
            )
            if manifest is None:
                raise HttpError(404, f"no run {run_id!r}")
            return {"run": manifest}
        if method == "PUT":
            body = await _read_body(reader, headers, MAX_STORE_BODY)
            try:
                manifest = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise HttpError(
                    400, "manifest body must be JSON"
                ) from None
            if not isinstance(manifest, dict):
                raise HttpError(
                    400, "manifest body must be a JSON object"
                )
            await self._call(backend.put_manifest, run_id, manifest)
            return {"run_id": run_id}
        if method == "DELETE":
            removed = await self._call(
                backend.delete_manifest, run_id
            )
            if not removed:
                raise HttpError(404, f"no run {run_id!r}")
            return {"deleted": run_id}
        raise HttpError(405, "run endpoints are GET/PUT/DELETE")
