"""The serving coordinator: coalescing, caching, metering, ledgering.

The coordinator sits between the async HTTP front end and the
synchronous evaluation stack.  Its contract:

* **one pass per distinct computation** — concurrent submissions with
  the same :meth:`~repro.serve.jobs.JobRequest.job_key` are *coalesced*
  onto one in-flight pipeline execution; every follower gets the
  leader's result document the moment it lands.  The pipeline itself
  batches all real evaluations of a pass through
  ``EvaluationEngine.evaluate_many`` on the shared
  :class:`~repro.core.runtime.ParallelRuntime`, so N clients asking for
  the same workload cost exactly one engine pass;
* **warm answers never recompute** — finished results are kept in a
  bounded in-memory LRU; repeat submissions are answered immediately
  (``source: "memory"``, zero synthesis, zero fits).  Cache misses
  still run against the persistent
  :class:`~repro.store.artifacts.ArtifactStore`, so a restarted server
  replays stages from the store (``source: "store"`` when every stage
  hits);
* **per-API-key metering** — each cold pass charges the submitting
  account's thread-safe :class:`~repro.core.budget.EvaluationBudget`
  *before* any model call; an exhausted budget fails the job without
  touching the engine.  Coalesced and cache-served jobs are free;
* **everything is ledgered** — with a store attached, every job lands
  in the :class:`~repro.store.ledger.RunLedger` as a ``serve-job``
  manifest (API key id, request params, cache source, outcome, and the
  underlying pipeline run id), so ``repro runs list --kind serve-job``
  is the service's audit log.

Job execution runs on a single worker thread by default
(``parallel_jobs=1``): passes serialise, and the parallelism lives
*inside* a pass (``REPRO_WORKERS`` / ``--workers`` fan out the real
evaluations).  All job-state mutation is marshalled back onto the
event-loop thread.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.serve.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SOURCE_COALESCED,
    SOURCE_COLD,
    SOURCE_MEMORY,
    SOURCE_STORE,
    Job,
    JobBoard,
    JobRequest,
    job_result_doc,
)
from repro.telemetry import get_metrics, maybe_span

#: Finished result documents kept for instant warm answers.
MEMORY_CACHE_SIZE = 128


class Coordinator:
    """Batching job executor (see module docstring)."""

    def __init__(
        self,
        store=None,
        workers: Optional[int] = None,
        parallel_jobs: int = 1,
    ):
        if parallel_jobs < 1:
            raise ValueError("parallel_jobs must be >= 1")
        self.store = store
        self.workers = workers
        self.board = JobBoard()
        self._executor = ThreadPoolExecutor(
            max_workers=parallel_jobs, thread_name_prefix="serve-job"
        )
        #: job_key -> jobs sharing the in-flight execution (leader first).
        self._inflight: Dict[str, List[Job]] = {}
        self._memory: "OrderedDict[str, Dict]" = OrderedDict()
        self._ledger = None
        if store is not None:
            from repro.store import RunLedger

            self._ledger = RunLedger(store)
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "pipeline_passes": 0,
            "coalesced": 0,
            "memory_hits": 0,
            "store_warm": 0,
            "done": 0,
            "failed": 0,
        }

    # -- submission (event-loop thread) --------------------------------------

    async def submit(self, account, request: JobRequest) -> Job:
        """Admit one job: cache-hit, coalesce, or start a new pass."""
        job = Job(
            id=self.board.new_id(),
            request=request,
            account_name=account.name,
            key_id=account.key_id,
        )
        self.board.add(job)
        account.jobs_submitted += 1
        self.stats["submitted"] += 1
        metrics = get_metrics()
        metrics.inc("serve.submitted")

        key = request.job_key()
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.stats["memory_hits"] += 1
            metrics.inc("serve.memory_hits")
            self._finish(job, result=dict(cached), source=SOURCE_MEMORY)
            await self.board.notify()
            return job

        group = self._inflight.get(key)
        if group is not None:
            self.stats["coalesced"] += 1
            metrics.inc("serve.coalesced")
            group.append(job)
            if group[0].status == RUNNING:
                job.status = RUNNING
                job.started_at = time.time()
            await self.board.notify()
            return job

        self._inflight[key] = [job]
        asyncio.get_running_loop().create_task(
            self._execute(key, request, account)
        )
        return job

    # -- execution -----------------------------------------------------------

    async def _execute(self, key: str, request: JobRequest, account):
        loop = asyncio.get_running_loop()
        for job in self._inflight[key]:
            if job.status == QUEUED:
                job.status = RUNNING
                job.started_at = time.time()
        await self.board.notify()
        self.stats["pipeline_passes"] += 1
        get_metrics().inc("serve.pipeline_passes")
        try:
            doc = await loop.run_in_executor(
                self._executor, self._run_pass, request, account
            )
        except Exception as exc:  # noqa: BLE001 - jobs report, not crash
            group = self._inflight.pop(key)
            message = f"{type(exc).__name__}: {exc}"
            for job in group:
                self._finish(job, error=message)
        else:
            group = self._inflight.pop(key)
            stage_cache = doc.get("stage_cache") or {}
            warm = bool(stage_cache) and all(
                outcome == "hit" for outcome in stage_cache.values()
            )
            if warm:
                self.stats["store_warm"] += 1
                get_metrics().inc("serve.store_warm")
            self._memory[key] = doc
            while len(self._memory) > MEMORY_CACHE_SIZE:
                self._memory.popitem(last=False)
            for position, job in enumerate(group):
                self._finish(
                    job,
                    result=dict(doc),
                    source=(
                        (SOURCE_STORE if warm else SOURCE_COLD)
                        if position == 0 else SOURCE_COALESCED
                    ),
                )
        await self.board.notify()

    def _run_pass(self, request: JobRequest, account) -> Dict:
        """One pipeline pass (runs on the executor thread).

        The admission charge happens here, *before* the engine sees the
        job, through the account's thread-safe budget — concurrent
        passes for one key can never jointly overspend it.
        """
        from repro.experiments.setup import run_workload_pipeline

        account.budget.charge(request.evals)
        with maybe_span(
            "serve.pass", cat="serve",
            args={"workload": request.workload,
                  "evals": request.evals},
        ):
            setup, result = run_workload_pipeline(
                request.workload,
                scale=request.scale,
                n_images=request.images,
                train=request.train,
                evals=request.evals,
                seed=request.seed,
                workers=self.workers,
                store=self.store,
            )
        return job_result_doc(request, setup, result)

    # -- completion (event-loop thread) --------------------------------------

    def _finish(
        self,
        job: Job,
        result: Optional[Dict] = None,
        source: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        job.finished_at = time.time()
        if job.started_at is None:
            job.started_at = job.finished_at
        metrics = get_metrics()
        if error is not None:
            job.status = FAILED
            job.error = error
            self.stats["failed"] += 1
            metrics.inc("serve.failed")
        else:
            job.status = DONE
            job.result = result
            job.source = source
            self.stats["done"] += 1
            metrics.inc("serve.done")
        latency = job.finished_at - (job.created_at or job.finished_at)
        metrics.observe(
            f"serve.job_seconds.{job.source or 'failed'}", latency
        )
        self._record(job)

    def _record(self, job: Job) -> None:
        """One ``serve-job`` ledger manifest per finished job."""
        if self._ledger is None:
            return
        from repro.store import RunLedger
        from repro.store.hashing import content_hash

        result = job.result or {}
        self._ledger.record(
            RunLedger.new_run_id(),
            kind="serve-job",
            label=f"serve:{job.request.workload}",
            params={
                **job.request.as_dict(),
                "job_id": job.id,
                "account": job.account_name,
                "api_key": job.key_id,
            },
            config_hash=content_hash(
                {"serve-job": job.request.as_dict()}
            ),
            stages=[
                {
                    "name": "serve",
                    "seconds": round(
                        (job.finished_at or 0.0)
                        - (job.created_at or 0.0),
                        6,
                    ),
                    "cache": job.source or "none",
                    "artifacts": [],
                }
            ],
            seed=job.request.seed,
            status="complete" if job.status == DONE else "failed",
            extra={
                "source": job.source,
                "error": job.error,
                "pipeline_run_id": result.get("run_id"),
                "engine_stats": result.get("engine_stats"),
                "metrics": get_metrics().snapshot(),
            },
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drain the worker thread(s); safe to call repeatedly."""
        self._executor.shutdown(wait=True, cancel_futures=True)
