"""Stdlib-only asyncio HTTP server — the approximation-as-a-service door.

``repro serve`` binds this server in front of the coordinator.  The
surface is a small versioned JSON API:

====== ============================= =====================================
Method Path                          Meaning
====== ============================= =====================================
GET    ``/v1/health``                liveness (no auth)
GET    ``/v1/workloads``             the registered workload catalog
POST   ``/v1/jobs``                  submit a job; returns 202 + job doc
GET    ``/v1/jobs``                  this key's jobs, newest first
GET    ``/v1/jobs/<id>``             poll one job (``?wait=SECONDS``
                                     long-polls until it finishes)
GET    ``/v1/jobs/<id>/events``      server-sent-events status stream
GET    ``/v1/account``               the caller's account + budget meter
GET    ``/v1/stats``                 coordinator + cache statistics
GET    ``/v1/metrics``               telemetry scrape (JSON; add
                                     ``?format=prometheus`` for text
                                     exposition)
GET    ``/v1/ledger``                ``serve-job`` run-ledger manifests
*      ``/v1/store/*``               shared-artifact-store API (see
                                     :mod:`repro.serve.store_api`):
                                     streamed content-addressed blobs
                                     with ETag-by-content-hash, key
                                     listing, gc, run manifests
====== ============================= =====================================

Authentication: when API keys are configured every endpoint except
``/v1/health`` requires ``Authorization: Bearer <secret>`` (or
``X-Api-Key``); unknown or missing credentials get 401.  Clients may
only read their own jobs (404 otherwise — the id space leaks nothing).

The implementation is deliberately bare ``asyncio.start_server``
HTTP/1.1: one request per connection, bounded request sizes, JSON in
and out with the CLI's ``version`` field convention.  No third-party
dependency gets between the paper stack and its front door.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import BudgetExceededError, ValidationError
from repro.serve.auth import ApiKeyRegistry
from repro.serve.coordinator import Coordinator
from repro.serve.jobs import JobRequest
from repro.serve.store_api import HttpError as _HttpError
from repro.serve.store_api import StoreApi, _read_body
from repro.telemetry import get_metrics, render_prometheus

#: Environment knob: default TCP port of ``repro serve``.
SERVE_PORT_ENV = "REPRO_SERVE_PORT"

#: Fallback port when neither ``--port`` nor the env knob is set.
DEFAULT_PORT = 8035

#: Version field of every JSON document this API emits.
API_VERSION = 1

#: Upper bounds on request framing (defense against accidental floods).
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def default_port() -> int:
    """Resolve the serve port: ``REPRO_SERVE_PORT`` (validated), else 8035.

    Blank or non-numeric values raise a
    :class:`~repro.errors.ValidationError` naming the knob — the
    numeric-env-knob contract shared with ``REPRO_PARALLEL_THRESHOLD``.
    """
    raw = os.environ.get(SERVE_PORT_ENV)
    if raw is None:
        return DEFAULT_PORT
    from repro.utils.validation import check_env_int

    return check_env_int(raw, source=SERVE_PORT_ENV, minimum=0,
                         maximum=65535)


class ServeApp:
    """Routes + request plumbing around one coordinator."""

    def __init__(
        self,
        coordinator: Optional[Coordinator] = None,
        keys: Optional[ApiKeyRegistry] = None,
    ):
        self.coordinator = (
            coordinator if coordinator is not None else Coordinator()
        )
        self.keys = keys if keys is not None else ApiKeyRegistry()
        self.store_api = StoreApi(self)

    # -- request framing -----------------------------------------------------

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Tuple[str, str, Dict[str, str]]:
        """Parse the request line + headers; the body stays unread.

        Each route reads its own body (see
        :func:`repro.serve.store_api._read_body`) so the JSON endpoints
        keep their small :data:`MAX_BODY_BYTES` cap while store blob
        uploads stream under the much larger store cap.
        """
        line = await reader.readline()
        if not line:
            raise ConnectionResetError("empty request")
        if len(line) > MAX_REQUEST_LINE:
            raise _HttpError(413, "request line too long")
        try:
            method, target, _version = (
                line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        total = 0
        while True:
            raw = await reader.readline()
            total += len(raw)
            if total > MAX_HEADER_BYTES:
                raise _HttpError(413, "headers too large")
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    @staticmethod
    def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        doc: Dict,
        content_type: str = "application/json",
    ) -> None:
        payload = json.dumps(
            {"version": API_VERSION, **doc}, sort_keys=True
        ).encode("utf-8") + b"\n"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)

    @staticmethod
    def _respond_raw(
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
    ) -> None:
        """Non-JSON response body (Prometheus text exposition)."""
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)

    # -- auth ----------------------------------------------------------------

    def _account_for(self, headers: Dict[str, str]):
        secret = None
        authorization = headers.get("authorization", "")
        if authorization.lower().startswith("bearer "):
            secret = authorization[7:].strip()
        if secret is None:
            secret = headers.get("x-api-key")
        account = self.keys.authenticate(secret)
        if account is None:
            raise _HttpError(401, "missing or unknown API key")
        return account

    # -- connection handler --------------------------------------------------

    async def handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                method, target, headers = await self._read_request(
                    reader
                )
            except ConnectionResetError:
                return
            metrics = get_metrics()
            metrics.inc("serve.http_requests")
            try:
                await self._route(
                    method, target, headers, reader, writer
                )
            except _HttpError as exc:
                metrics.inc(f"serve.http_{exc.status}")
                self._respond(
                    writer, exc.status, {"error": str(exc)}
                )
            except BudgetExceededError as exc:
                metrics.inc("serve.http_429")
                self._respond(writer, 429, {"error": str(exc)})
            except ValidationError as exc:
                metrics.inc("serve.http_400")
                self._respond(writer, 400, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 - keep serving
                self._respond(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        url = urlsplit(target)
        path = unquote(url.path).rstrip("/") or "/"
        query = {
            name: values[-1]
            for name, values in parse_qs(url.query).items()
        }

        if path == "/v1/health":
            if method != "GET":
                raise _HttpError(405, "health is GET-only")
            self._respond(writer, 200, {
                "status": "ok",
                "auth": self.keys.enabled,
                "jobs": len(self.coordinator.board),
            })
            return

        account = self._account_for(headers)

        if path.startswith("/v1/store"):
            doc = await self.store_api.handle(
                method, path, query, headers, reader, writer
            )
            if doc is not None:
                self._respond(writer, 200, doc)
        elif path == "/v1/workloads" and method == "GET":
            self._respond(writer, 200, self._workloads_doc())
        elif path == "/v1/jobs" and method == "POST":
            body = await _read_body(reader, headers, MAX_BODY_BYTES)
            await self._submit(account, body, writer)
        elif path == "/v1/jobs" and method == "GET":
            jobs = self.coordinator.board.jobs_for(account.key_id)
            self._respond(writer, 200, {
                "jobs": [job.doc(include_result=False) for job in jobs],
            })
        elif path == "/v1/account" and method == "GET":
            self._respond(writer, 200, {"account": account.doc()})
        elif path == "/v1/stats" and method == "GET":
            self._respond(writer, 200, {
                "stats": dict(self.coordinator.stats),
                "inflight": len(self.coordinator._inflight),
                "jobs": len(self.coordinator.board),
            })
        elif path == "/v1/metrics" and method == "GET":
            self._metrics_endpoint(query, writer)
        elif path == "/v1/ledger" and method == "GET":
            self._respond(writer, 200, self._ledger_doc())
        elif path.startswith("/v1/jobs/"):
            await self._job_endpoint(
                method, path, query, account, writer
            )
        else:
            raise _HttpError(404, f"no route for {method} {path}")

    # -- endpoint bodies -----------------------------------------------------

    @staticmethod
    def _workloads_doc() -> Dict:
        from repro.workloads import WORKLOADS

        return {
            "workloads": [
                {
                    "name": workload.name,
                    "description": workload.description,
                    "tags": list(workload.tags),
                }
                for workload in WORKLOADS
            ]
        }

    def _metrics_endpoint(self, query: Dict[str, str], writer) -> None:
        """Live telemetry scrape: JSON snapshot or Prometheus text."""
        fmt = query.get("format", "json").strip().lower()
        snapshot = get_metrics().snapshot()
        if fmt == "prometheus":
            text = render_prometheus(snapshot)
            self._respond_raw(
                writer, 200, text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif fmt == "json":
            self._respond(writer, 200, {"metrics": snapshot})
        else:
            raise _HttpError(
                400, "format must be 'json' or 'prometheus'"
            )

    def _ledger_doc(self) -> Dict:
        if self.coordinator.store is None:
            raise _HttpError(404, "no experiment store attached")
        from repro.store import RunLedger

        ledger = RunLedger(self.coordinator.store)
        return {"runs": ledger.runs(kind="serve-job")}

    async def _submit(self, account, body: bytes, writer) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _HttpError(400, "request body must be JSON") from None
        request = JobRequest.from_payload(payload)
        job = await self.coordinator.submit(account, request)
        self._respond(
            writer, 202, {"job": job.doc(include_result=False)}
        )

    async def _job_endpoint(
        self, method: str, path: str, query, account, writer
    ) -> None:
        if method != "GET":
            raise _HttpError(405, "job endpoints are GET-only")
        parts = path.split("/")  # '', 'v1', 'jobs', <id>[, 'events']
        job = self.coordinator.board.get(parts[3])
        if job is None or job.key_id != account.key_id:
            raise _HttpError(404, f"no job {parts[3]!r}")
        if len(parts) == 5 and parts[4] == "events":
            await self._stream(job, writer)
            return
        if len(parts) != 4:
            raise _HttpError(404, f"no route for {path}")
        if "wait" in query:
            from repro.utils.validation import check_env_float

            timeout = check_env_float(
                query["wait"], source="wait query parameter",
                minimum=0.0,
            )
            await self.coordinator.board.wait_for_terminal(
                job, timeout=min(timeout, 600.0)
            )
        self._respond(writer, 200, {"job": job.doc()})

    async def _stream(self, job, writer: asyncio.StreamWriter) -> None:
        """Server-sent events: one ``data:`` frame per status change."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        last = None
        while True:
            doc = job.doc(include_result=job.terminal)
            frame = json.dumps(
                {"version": API_VERSION, "job": doc}, sort_keys=True
            )
            if frame != last:
                writer.write(
                    b"data: " + frame.encode("utf-8") + b"\n\n"
                )
                await writer.drain()
                last = frame
            if job.terminal:
                return
            await self.coordinator.board.wait_for_terminal(
                job, timeout=5.0
            )


async def start_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind ``app`` on (host, port); port 0 picks a free one."""
    return await asyncio.start_server(app.handle, host=host, port=port)


def bound_port(server: asyncio.AbstractServer) -> int:
    return server.sockets[0].getsockname()[1]


async def serve_forever(
    app: ServeApp, host: str, port: int, ready=None
) -> None:
    """Run until cancelled; ``ready(actual_port)`` fires once bound."""
    server = await start_server(app, host=host, port=port)
    if ready is not None:
        ready(bound_port(server))
    try:
        async with server:
            await server.serve_forever()
    finally:
        app.coordinator.close()


class ServerThread:
    """A server on a background thread — tests, benchmarks, smoke runs.

    ``start()`` returns once the socket is bound; ``base_url`` then
    points at it.  ``stop()`` shuts the listener, the coordinator's
    worker threads, and the loop down in order.
    """

    def __init__(
        self,
        app: Optional[ServeApp] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.app = app if app is not None else ServeApp()
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("serve thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"serve thread failed to bind: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._server = self._loop.run_until_complete(
                start_server(self.app, host=self.host, port=self.port)
            )
            self.port = bound_port(self._server)
        except BaseException as exc:  # pragma: no cover - bind failure
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._server.close()
            self._loop.run_until_complete(
                self._server.wait_closed()
            )
            self._loop.close()

    def stop(self) -> None:
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.app.coordinator.close()
