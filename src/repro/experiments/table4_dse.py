"""Table 4 — distance of heuristic / random-sampling fronts to the optimal
Pareto front of the (estimated) Sobel design space.

The paper enumerates all 4.92e7 configurations of the reduced space; we
cap each per-operation library (default 8 candidates/op => ~3.3e4
configurations) so the exhaustive reference front remains laptop-scale,
and compare the proposed Algorithm 1 against random sampling at several
evaluation budgets.  The comparison — proposed needs orders of magnitude
fewer evaluations to approach the optimum, RS misses front regions — is
scale-invariant (see DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.profiler import profile_accelerator
from repro.accelerators.sobel import SobelEdgeDetector
from repro.core.budget import EvaluationBudget
from repro.core.dse import exhaustive_search
from repro.core.pareto import front_distances
from repro.core.preprocessing import reduce_library
from repro.experiments.setup import (
    ExperimentSetup,
    build_engine,
    fit_search_models,
)
from repro.search.portfolio import PortfolioRunner
from repro.search.strategies import make_strategy


@dataclass
class Table4Row:
    """One (algorithm, budget) entry of Table 4."""

    algorithm: str
    evaluations: int
    pareto_size: int
    to_optimal_avg: float
    to_optimal_max: float
    from_optimal_avg: float
    from_optimal_max: float


@dataclass
class Table4Result:
    optimal_size: int
    optimal_evaluations: int
    rows: List[Table4Row]


def table4_distances(
    setup: ExperimentSetup,
    budgets: Sequence[int] = (10**3, 10**4, 10**5),
    per_op_cap: Optional[int] = None,
    n_train: int = 300,
    n_test: int = 150,
    stagnation_limit: int = 50,
    engines: Sequence[str] = ("Random Forest",),
    enumeration_limit: float = 2e6,
    include_portfolio: bool = False,
    portfolio_workers: Optional[int] = None,
) -> Table4Result:
    """Run proposed vs RS at each budget against the exhaustive front.

    Every algorithm runs through the budget-metered search-strategy
    layer, so each row's ``evaluations`` is the *exact* number of model
    calls issued — the budget-matched comparison of the paper's
    Table 4 holds by construction.  ``include_portfolio`` adds a third
    row per budget: the parallel portfolio (hill + NSGA-II + random
    islands) at the same exact budget.

    The reduced space is thinned (``per_op_cap``) only when it exceeds
    ``enumeration_limit`` configurations, so the reference front stays
    computable.
    """
    accelerator = SobelEdgeDetector()
    profiles = profile_accelerator(
        accelerator, setup.images, rng=setup.seed
    )
    space = reduce_library(
        accelerator, setup.library, profiles, per_op_cap=per_op_cap
    )
    while space.size() > enumeration_limit:
        per_op_cap = (
            max(space.slot_sizes()) - 2
            if per_op_cap is None
            else per_op_cap - 2
        )
        if per_op_cap < 4:
            raise ValueError("cannot thin the space below 4 choices/op")
        space = reduce_library(
            accelerator, setup.library, profiles, per_op_cap=per_op_cap
        )
    evaluator = build_engine(accelerator, setup.images)
    qor_model, hw_model = fit_search_models(
        space, evaluator, n_train, n_test, engines=engines,
        seed=setup.seed,
    )

    optimal = exhaustive_search(space, qor_model, hw_model)
    # Joint normalisation bounds over the whole estimated objective space
    # (the paper normalises estimated QoR and HW to [0, 1]).
    low = optimal.points.min(axis=0)
    high = optimal.points.max(axis=0)

    hill = make_strategy(
        f"hill:stagnation_limit={stagnation_limit},batch_size=64"
    )
    sampler = make_strategy("random")
    rows: List[Table4Row] = []
    for budget in budgets:
        results = [
            (
                "Proposed",
                hill.run(
                    space, qor_model, hw_model,
                    budget=EvaluationBudget(budget),
                    rng=setup.seed + budget,
                ),
            ),
            (
                "Random sampling",
                sampler.run(
                    space, qor_model, hw_model,
                    budget=EvaluationBudget(budget),
                    rng=setup.seed + budget,
                ),
            ),
        ]
        if include_portfolio:
            portfolio = PortfolioRunner(
                space, qor_model, hw_model,
                strategies=("hill", "nsga2", "random"),
                rounds=2,
                seed=setup.seed + budget,
                workers=portfolio_workers,
            ).run(budget)
            results.append(("Portfolio", portfolio.as_dse_result()))
        for name, result in results:
            stats = front_distances(
                result.points, optimal.points, bounds=(low, high)
            )
            rows.append(
                Table4Row(
                    algorithm=name,
                    evaluations=result.evaluations,
                    pareto_size=len(result),
                    to_optimal_avg=stats["to_optimal_avg"],
                    to_optimal_max=stats["to_optimal_max"],
                    from_optimal_avg=stats["from_optimal_avg"],
                    from_optimal_max=stats["from_optimal_max"],
                )
            )
    return Table4Result(
        optimal_size=len(optimal),
        optimal_evaluations=optimal.evaluations,
        rows=rows,
    )
