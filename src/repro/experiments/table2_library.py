"""Table 2 — approximate circuits included in the initial library."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.library.generation import PAPER_COUNTS
from repro.library.library import ComponentLibrary

#: The paper's library sizes per signature.
PAPER_TABLE2: Dict[Tuple[str, int], int] = dict(PAPER_COUNTS)


def table2_counts(
    library: ComponentLibrary,
) -> Dict[Tuple[str, int], Dict[str, float]]:
    """Per-signature component counts of ``library`` next to the paper's.

    ``fraction`` reports the generated count relative to the paper-scale
    count, making the scaling factor of the run explicit.
    """
    out: Dict[Tuple[str, int], Dict[str, float]] = {}
    summary = library.summary()
    for sig, paper_count in PAPER_TABLE2.items():
        generated = summary.get(sig, 0)
        out[sig] = {
            "generated": generated,
            "paper": paper_count,
            "fraction": generated / paper_count,
        }
    return out
