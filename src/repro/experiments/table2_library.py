"""Table 2 — approximate circuits included in the initial library."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.library.generation import (
    PAPER_COUNTS,
    paper_scale_plan,
    scaled_plan,
)
from repro.library.library import ComponentLibrary
from repro.library.pipeline import LibraryBuildResult, build_library

#: The paper's library sizes per signature.
PAPER_TABLE2: Dict[Tuple[str, int], int] = dict(PAPER_COUNTS)


def build_table2_library(
    scale: float = 1.0,
    seed: int = 0,
    workers: Optional[int] = None,
    store=None,
    progress: Optional[Callable[[str], None]] = None,
) -> LibraryBuildResult:
    """Build the (possibly scaled) Table 2 library through the pipeline.

    ``scale=1.0`` reproduces the paper's full component counts (tens of
    thousands of circuits — the dominant cold-start cost, which is
    exactly what the parallel, store-memoised pipeline exists for);
    smaller scales use the same proportional plan as the experiment
    drivers.  Returns the build result including cache statistics, so
    drivers can report how much of the library came warm.
    """
    plan = (
        paper_scale_plan(seed=seed) if scale >= 1.0
        else scaled_plan(scale, seed=seed)
    )
    return build_library(
        plan, workers=workers, store=store, progress=progress
    )


def table2_counts(
    library: ComponentLibrary,
) -> Dict[Tuple[str, int], Dict[str, float]]:
    """Per-signature component counts of ``library`` next to the paper's.

    ``fraction`` reports the generated count relative to the paper-scale
    count, making the scaling factor of the run explicit.
    """
    out: Dict[Tuple[str, int], Dict[str, float]] = {}
    summary = library.summary()
    for sig, paper_count in PAPER_TABLE2.items():
        generated = summary.get(sig, 0)
        out[sig] = {
            "generated": generated,
            "paper": paper_count,
            "fraction": generated / paper_count,
        }
    return out
