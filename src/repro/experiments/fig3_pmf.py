"""Figure 3 — probability mass functions of the Sobel ED operations.

The paper plots the joint operand PMFs of ``add1``, ``add2`` and ``sub``,
showing heavy concentration near the diagonal (neighbouring pixels are
similar) and the stripe pattern induced by the shifted operand of add2.
Here we compute the dense PMFs, summary statistics quantifying those
structures, and an ASCII rendering for terminal inspection.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.accelerators.profiler import OperandProfile, profile_accelerator
from repro.accelerators.sobel import SobelEdgeDetector

#: The ops the paper plots (add3/add4 mirror add1/add2, see §4.1.1).
FIG3_OPS = ("add1", "add2", "sub")


def _pmf_stats(profile: OperandProfile) -> Dict[str, float]:
    pmf = profile.pmf_2d()
    size = pmf.shape[0]
    a_idx, b_idx = np.nonzero(pmf)
    weights = pmf[a_idx, b_idx]
    mean_a = float(a_idx @ weights)
    mean_b = float(b_idx @ weights)
    var_a = float((a_idx - mean_a) ** 2 @ weights)
    var_b = float((b_idx - mean_b) ** 2 @ weights)
    cov = float((a_idx - mean_a) * (b_idx - mean_b) @ weights)
    denom = np.sqrt(var_a * var_b)
    corr = cov / denom if denom > 0 else 0.0
    near_diag = float(
        weights[np.abs(a_idx - b_idx) <= size // 16].sum()
    )
    return {
        "operand_correlation": corr,
        "mass_within_diag_band": near_diag,
        "support_fraction": a_idx.size / pmf.size,
    }


def fig3_profiles(
    images: Sequence[np.ndarray],
) -> Dict[str, Dict[str, object]]:
    """Dense PMFs + structure statistics for the Fig. 3 operations."""
    accelerator = SobelEdgeDetector()
    profiles = profile_accelerator(accelerator, images)
    out: Dict[str, Dict[str, object]] = {}
    for name in FIG3_OPS:
        profile = profiles[name]
        out[name] = {
            "signature": profile.signature,
            "pmf": profile.pmf_2d(),
            "stats": _pmf_stats(profile),
        }
    return out


#: Shade ramp for ASCII PMF rendering (low to high probability).
_SHADES = " .:-=+*#%@"


def render_pmf_ascii(pmf: np.ndarray, bins: int = 24) -> str:
    """Log-scale down-sampled ASCII heat map of a joint PMF matrix."""
    pmf = np.asarray(pmf, dtype=float)
    if pmf.ndim != 2 or pmf.shape[0] != pmf.shape[1]:
        raise ValueError("expected a square PMF matrix")
    size = pmf.shape[0]
    bins = min(bins, size)
    edges = np.linspace(0, size, bins + 1).astype(int)
    coarse = np.zeros((bins, bins))
    for i in range(bins):
        for j in range(bins):
            coarse[i, j] = pmf[
                edges[i] : edges[i + 1], edges[j] : edges[j + 1]
            ].sum()
    with np.errstate(divide="ignore"):
        logp = np.log10(np.where(coarse > 0, coarse, np.nan))
    finite = logp[np.isfinite(logp)]
    if finite.size == 0:
        return "\n".join(" " * bins for _ in range(bins))
    low, high = finite.min(), finite.max()
    span = high - low if high > low else 1.0
    lines: List[str] = []
    for i in range(bins - 1, -1, -1):  # operand a on the y axis, upward
        chars = []
        for j in range(bins):
            if not np.isfinite(logp[i, j]):
                chars.append(" ")
            else:
                level = int(
                    (logp[i, j] - low) / span * (len(_SHADES) - 1)
                )
                chars.append(_SHADES[level])
        lines.append("".join(chars))
    return "\n".join(lines)
