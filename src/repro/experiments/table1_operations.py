"""Table 1 — the number of operations in the target accelerators."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.accelerators.gaussian_fixed import FixedGaussianFilter
from repro.accelerators.gaussian_generic import GenericGaussianFilter
from repro.accelerators.sobel import SobelEdgeDetector

#: Column order of the paper's Table 1.
TABLE1_COLUMNS: Tuple[Tuple[str, int], ...] = (
    ("add", 8),
    ("add", 9),
    ("add", 16),
    ("sub", 10),
    ("sub", 16),
    ("mul", 8),
)

#: The values printed in the paper, for verification.
PAPER_TABLE1 = {
    "Sobel ED": (2, 2, 0, 1, 0, 0),
    "Fixed GF": (4, 2, 4, 0, 1, 0),
    "Generic GF": (0, 0, 8, 0, 0, 9),
}


def table1_rows() -> List[Dict[str, object]]:
    """Operation inventory rows for the three case-study accelerators."""
    rows = []
    for label, accelerator in (
        ("Sobel ED", SobelEdgeDetector()),
        ("Fixed GF", FixedGaussianFilter()),
        ("Generic GF", GenericGaussianFilter()),
    ):
        inventory = accelerator.op_inventory()
        counts = tuple(inventory.get(sig, 0) for sig in TABLE1_COLUMNS)
        rows.append(
            {
                "problem": label,
                "counts": counts,
                "total": sum(counts),
                "matches_paper": counts == PAPER_TABLE1[label],
            }
        )
    return rows
