"""Experiment drivers: one module per paper table / figure.

Every driver is a plain function taking an :class:`ExperimentSetup` (or
explicit arguments) and returning the rows/series the paper reports, so
the pytest benchmarks, the examples and ad-hoc scripts all share one
implementation.
"""

from repro.experiments.setup import ExperimentSetup, default_setup
from repro.experiments.table1_operations import table1_rows
from repro.experiments.table2_library import table2_counts
from repro.experiments.fig3_pmf import fig3_profiles, render_pmf_ascii
from repro.experiments.table3_fidelity import table3_fidelity
from repro.experiments.fig4_correlation import fig4_correlation
from repro.experiments.table4_dse import table4_distances
from repro.experiments.table5_space import table5_sizes
from repro.experiments.fig5_fronts import fig5_fronts
from repro.experiments.speedup import estimation_speedup
from repro.experiments.ablations import (
    ablate_hw_features,
    ablate_model_selection,
    ablate_preprocessing,
    ablate_qor_features,
    ablate_restarts,
)

__all__ = [
    "ablate_hw_features",
    "ablate_model_selection",
    "ablate_preprocessing",
    "ablate_qor_features",
    "ablate_restarts",
    "ExperimentSetup",
    "default_setup",
    "table1_rows",
    "table2_counts",
    "fig3_profiles",
    "render_pmf_ascii",
    "table3_fidelity",
    "fig4_correlation",
    "table4_distances",
    "table5_sizes",
    "fig5_fronts",
    "estimation_speedup",
]
