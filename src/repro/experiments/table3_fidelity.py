"""Table 3 — fidelity of the learning engines on the Sobel edge detector.

Reproduces the paper's engine comparison: models are trained on randomly
drawn configurations of the reduced Sobel space and scored by train/test
fidelity for both the SSIM (QoR) and area (hardware) targets.  The paper
uses 1500 + 1500 configurations; the driver takes the counts as
parameters so quick runs remain possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.accelerators.profiler import profile_accelerator
from repro.accelerators.sobel import SobelEdgeDetector
from repro.core.modeling import (
    TrainingSet,
    build_training_set,
    fit_engines,
)
from repro.core.preprocessing import reduce_library
from repro.experiments.setup import ExperimentSetup, build_engine


@dataclass
class Table3Row:
    """One engine's train/test fidelity for both targets."""

    engine: str
    ssim_train: float
    ssim_test: float
    area_train: float
    area_test: float


def table3_fidelity(
    setup: ExperimentSetup,
    n_train: int = 600,
    n_test: int = 600,
    engines: Optional[Sequence[str]] = None,
) -> List[Table3Row]:
    """Fit all engines on the Sobel problem; rows sorted by SSIM test
    fidelity descending (the paper's row order criterion)."""
    accelerator = SobelEdgeDetector()
    profiles = profile_accelerator(
        accelerator, setup.images, rng=setup.seed
    )
    space = reduce_library(accelerator, setup.library, profiles)
    evaluator = build_engine(accelerator, setup.images)
    train = build_training_set(space, evaluator, n_train, rng=setup.seed)
    test = build_training_set(
        space, evaluator, n_test, rng=setup.seed + 1
    )

    qor_reports = fit_engines(
        space, train, test, target="qor", engines=engines,
        seed=setup.seed,
    )
    hw_reports = fit_engines(
        space, train, test, target="area", engines=engines,
        seed=setup.seed,
    )
    hw_by_name: Dict[str, object] = {r.name: r for r in hw_reports}

    rows = []
    for q in qor_reports:
        h = hw_by_name[q.name]
        rows.append(
            Table3Row(
                engine=q.name,
                ssim_train=q.fidelity_train,
                ssim_test=q.fidelity_test,
                area_train=h.fidelity_train,
                area_test=h.fidelity_test,
            )
        )
    rows.sort(key=lambda r: r.ssim_test, reverse=True)
    return rows
