"""Figure 5 — final Pareto fronts: proposed vs random sampling vs uniform.

For each accelerator the driver produces three *real-evaluated* fronts in
(SSIM, area) space, mirroring the paper's comparison:

* **proposed** — the full autoAx pipeline (model-based Algorithm 1, then
  real analysis of the pseudo Pareto set);
* **random sampling** — randomly generated configurations evaluated for
  real with the same real-analysis budget as the proposed flow;
* **uniform selection** — the deterministic manual heuristic (equal
  relative WMED everywhere).

Front quality is summarised by the dominated hypervolume (higher is
better) in normalised (1 - SSIM, area) space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dse import uniform_selection
from repro.core.pareto import hypervolume_2d, pareto_front_indices
from repro.core.pipeline import AutoAx, AutoAxConfig
from repro.experiments.setup import ExperimentSetup, build_engine
from repro.experiments.table5_space import default_cases


@dataclass
class FrontSeries:
    """One method's real-evaluated front for one accelerator."""

    method: str
    points: np.ndarray  # columns: ssim, area (front members only)
    energy: np.ndarray
    evaluated: int
    hypervolume: float = 0.0


@dataclass
class Fig5Case:
    problem: str
    fronts: Dict[str, FrontSeries]


def _front(points: np.ndarray) -> np.ndarray:
    minimised = np.stack([-points[:, 0], points[:, 1]], axis=1)
    return pareto_front_indices(minimised)


def fig5_fronts(
    setup: ExperimentSetup,
    config: Optional[AutoAxConfig] = None,
    uniform_points: int = 30,
    cases=None,
    store=None,
) -> List[Fig5Case]:
    """Compute the three fronts per accelerator, with hypervolumes.

    ``store`` (an :class:`repro.store.ArtifactStore`) makes the embedded
    pipeline runs stage-cached and ledger-recorded.
    """
    if config is None:
        config = AutoAxConfig(
            n_train=200, n_test=100, max_evaluations=20_000,
            seed=setup.seed,
        )
    if cases is None:
        cases = default_cases(setup)
    out: List[Fig5Case] = []
    for label, accelerator, images, scenarios in cases:
        pipeline = AutoAx(
            accelerator, setup.library, images, scenarios=scenarios,
            config=config, store=store,
            run_kind="experiment", run_label=f"fig5:{label}",
        )
        result = pipeline.run()
        space = result.space
        evaluator = build_engine(accelerator, images, scenarios)

        fronts: Dict[str, FrontSeries] = {}

        qor = np.asarray([r.qor for r in result.real_evaluations])
        area = np.asarray([r.area for r in result.real_evaluations])
        energy = np.asarray(
            [r.energy for r in result.real_evaluations]
        )
        keep = _front(np.stack([qor, area], axis=1))
        fronts["proposed"] = FrontSeries(
            method="proposed",
            points=np.stack([qor[keep], area[keep]], axis=1),
            energy=energy[keep],
            evaluated=len(result.real_evaluations),
        )

        # Random sampling with the same *real analysis* budget.
        budget = len(result.real_evaluations)
        rng_configs = space.random_configurations(
            budget, rng=setup.seed + 99
        )
        rs_results = evaluator.evaluate_many(space, rng_configs)
        rs_qor = np.asarray([r.qor for r in rs_results])
        rs_area = np.asarray([r.area for r in rs_results])
        rs_energy = np.asarray([r.energy for r in rs_results])
        keep = _front(np.stack([rs_qor, rs_area], axis=1))
        fronts["random"] = FrontSeries(
            method="random",
            points=np.stack([rs_qor[keep], rs_area[keep]], axis=1),
            energy=rs_energy[keep],
            evaluated=budget,
        )

        uni_configs = uniform_selection(space, uniform_points)
        uni_results = evaluator.evaluate_many(space, uni_configs)
        uni_qor = np.asarray([r.qor for r in uni_results])
        uni_area = np.asarray([r.area for r in uni_results])
        uni_energy = np.asarray([r.energy for r in uni_results])
        keep = _front(np.stack([uni_qor, uni_area], axis=1))
        fronts["uniform"] = FrontSeries(
            method="uniform",
            points=np.stack([uni_qor[keep], uni_area[keep]], axis=1),
            energy=uni_energy[keep],
            evaluated=len(uni_configs),
        )

        # Hypervolume in a shared normalised (1 - ssim, area) space.
        all_points = np.vstack([f.points for f in fronts.values()])
        area_high = float(all_points[:, 1].max()) * 1.05 + 1e-9
        for series in fronts.values():
            minimised = np.stack(
                [1.0 - series.points[:, 0], series.points[:, 1]], axis=1
            )
            series.hypervolume = hypervolume_2d(
                minimised, reference=(1.0, area_high)
            )
        out.append(Fig5Case(problem=label, fronts=fronts))
    return out
