"""Table 5 — design-space size after each step of the methodology.

For every accelerator the driver reports: the size of the unconstrained
space (|library|^ops, both at the run's library scale and extrapolated to
the paper-scale Table 2 library), the size after library pre-processing,
the pseudo Pareto set size and the final Pareto set size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.accelerators.base import ImageAccelerator
from repro.accelerators.gaussian_fixed import FixedGaussianFilter
from repro.accelerators.gaussian_generic import (
    GenericGaussianFilter,
    kernel_sweep,
)
from repro.accelerators.sobel import SobelEdgeDetector
from repro.core.pipeline import AutoAx, AutoAxConfig
from repro.experiments.setup import ExperimentSetup
from repro.library.generation import PAPER_COUNTS


@dataclass
class Table5Row:
    """One accelerator's row of Table 5."""

    problem: str
    all_possible: float
    all_possible_paper_scale: float
    after_preprocessing: float
    pseudo_pareto: int
    final_pareto: int


def _paper_scale_size(accelerator: ImageAccelerator) -> float:
    total = 1.0
    for slot in accelerator.op_slots():
        total *= PAPER_COUNTS[slot.signature]
    return total


def default_cases(
    setup: ExperimentSetup, n_kernels: int = 5, n_gf_images: int = 2
):
    """The three paper case studies with their QoR scenarios."""
    kernels = [
        GenericGaussianFilter.kernel_extra(w)
        for w in kernel_sweep(n_kernels)
    ]
    return (
        ("Sobel ED", SobelEdgeDetector(), setup.images, None),
        ("Fixed GF", FixedGaussianFilter(), setup.images, None),
        (
            "Generic GF",
            GenericGaussianFilter(),
            setup.images[:n_gf_images],
            kernels,
        ),
    )


def table5_sizes(
    setup: ExperimentSetup,
    config: Optional[AutoAxConfig] = None,
    cases=None,
    store=None,
) -> List[Table5Row]:
    """Run the full pipeline per accelerator and collect space sizes.

    ``store`` (an :class:`repro.store.ArtifactStore`) makes the embedded
    pipeline runs stage-cached and ledger-recorded.
    """
    if config is None:
        config = AutoAxConfig(
            n_train=200, n_test=100, max_evaluations=20_000,
            seed=setup.seed,
        )
    if cases is None:
        cases = default_cases(setup)
    rows: List[Table5Row] = []
    for label, accelerator, images, scenarios in cases:
        pipeline = AutoAx(
            accelerator, setup.library, images, scenarios=scenarios,
            config=config, store=store,
            run_kind="experiment", run_label=f"table5:{label}",
        )
        result = pipeline.run()
        rows.append(
            Table5Row(
                problem=label,
                all_possible=result.initial_space_size,
                all_possible_paper_scale=_paper_scale_size(accelerator),
                after_preprocessing=result.reduced_space_size,
                pseudo_pareto=len(result.pseudo_pareto),
                final_pareto=len(result.final_configs),
            )
        )
    return rows
