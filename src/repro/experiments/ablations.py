"""Ablation studies of the methodology's design choices.

Each function isolates one decision the paper makes (or reports) and
measures its effect on the Sobel case study:

* :func:`ablate_model_selection` — select the estimation model by test
  *fidelity* (the paper's criterion) vs by test R^2 accuracy.
* :func:`ablate_preprocessing` — WMED-guided per-operation Pareto
  filtering vs a random subset of the same size.
* :func:`ablate_restarts` — Algorithm 1 with stagnation restarts vs a
  plain hill climber (no restarts) vs random sampling.
* :func:`ablate_hw_features` — hardware-model feature sets: area only
  vs area+power+delay (the paper reports ~2 % fidelity loss without
  power/delay, §4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.profiler import profile_accelerator
from repro.accelerators.sobel import SobelEdgeDetector
from repro.core.configuration import ConfigurationSpace
from repro.core.dse import heuristic_pareto_construction, random_sampling
from repro.core.modeling import (
    build_training_set,
    fit_engines,
    select_best_model,
)
from repro.core.pareto import hypervolume_2d, pareto_front_indices
from repro.core.preprocessing import reduce_library
from repro.core.wmed import wmed_table
from repro.experiments.setup import ExperimentSetup, build_engine
from repro.utils.rng import ensure_rng


def _sobel_space_and_evaluator(setup: ExperimentSetup):
    accelerator = SobelEdgeDetector()
    profiles = profile_accelerator(
        accelerator, setup.images, rng=setup.seed
    )
    space = reduce_library(accelerator, setup.library, profiles)
    evaluator = build_engine(accelerator, setup.images)
    return accelerator, profiles, space, evaluator


# -- 1. fidelity vs accuracy model selection -----------------------------


@dataclass
class ModelSelectionAblation:
    by_fidelity: str
    by_r2: str
    fidelity_of_fidelity_choice: float
    fidelity_of_r2_choice: float
    front_hv_fidelity_choice: float
    front_hv_r2_choice: float


def ablate_model_selection(
    setup: ExperimentSetup,
    n_train: int = 300,
    n_test: int = 200,
    engines: Sequence[str] = (
        "Random Forest",
        "Decision Tree",
        "Gaussian process",
        "Bayesian Ridge",
        "K-Neighbors",
    ),
    max_evaluations: int = 5000,
    n_verify: int = 60,
) -> ModelSelectionAblation:
    """Compare fidelity-selected vs R^2-selected QoR models end to end.

    Both selections drive a full DSE + real verification pass; fronts are
    compared by hypervolume over the real (1-SSIM, area) points.
    """
    _, _, space, evaluator = _sobel_space_and_evaluator(setup)
    train = build_training_set(space, evaluator, n_train, rng=setup.seed)
    test = build_training_set(
        space, evaluator, n_test, rng=setup.seed + 1
    )
    qor_reports = fit_engines(
        space, train, test, target="qor", engines=list(engines),
        include_naive=False, seed=setup.seed,
    )
    hw_reports = fit_engines(
        space, train, test, target="area", engines=["Random Forest"],
        include_naive=False, seed=setup.seed,
    )
    hw_model = select_best_model(hw_reports).model

    by_fid = max(qor_reports, key=lambda r: r.fidelity_test)
    by_r2 = max(qor_reports, key=lambda r: r.r2_test)

    def front_points(qor_report) -> np.ndarray:
        pseudo = heuristic_pareto_construction(
            space, qor_report.model, hw_model,
            max_evaluations=max_evaluations, rng=setup.seed,
        )
        configs = pseudo.configs[:n_verify]
        real = evaluator.evaluate_many(space, configs)
        qor = np.array([r.qor for r in real])
        area = np.array([r.area for r in real])
        return np.stack([1.0 - qor, area], axis=1)

    fid_points = front_points(by_fid)
    r2_points = front_points(by_r2)
    ref = (
        1.0,
        max(fid_points[:, 1].max(), r2_points[:, 1].max()) * 1.05 + 1e-9,
    )
    return ModelSelectionAblation(
        by_fidelity=by_fid.name,
        by_r2=by_r2.name,
        fidelity_of_fidelity_choice=by_fid.fidelity_test,
        fidelity_of_r2_choice=by_r2.fidelity_test,
        front_hv_fidelity_choice=hypervolume_2d(fid_points, ref),
        front_hv_r2_choice=hypervolume_2d(r2_points, ref),
    )


# -- 2. WMED Pareto pre-processing vs random subset -------------------------


@dataclass
class PreprocessingAblation:
    pareto_sizes: List[int]
    random_sizes: List[int]
    pareto_front_hv: float
    random_front_hv: float


def _random_space(
    accelerator, library, profiles, sizes: Sequence[int], seed: int
) -> ConfigurationSpace:
    """A control space: per op, a *random* subset of the same size as
    the WMED-Pareto-reduced one (exact circuit force-included)."""
    gen = ensure_rng(seed)
    slots = accelerator.op_slots()
    choices = []
    wmeds = []
    for slot, size in zip(slots, sizes):
        candidates = library.components(slot.signature)
        exact_ids = [i for i, r in enumerate(candidates) if r.is_exact()]
        pool = list(range(len(candidates)))
        picks = set(
            gen.choice(len(pool), size=min(size, len(pool)),
                       replace=False).tolist()
        )
        if exact_ids and not picks & set(exact_ids):
            picks.pop()
            picks.add(exact_ids[0])
        chosen = sorted(picks)
        group = [candidates[i] for i in chosen]
        scores = wmed_table(group, profiles[slot.name])
        choices.append(group)
        wmeds.append(scores)
    return ConfigurationSpace(slots, choices, wmeds)


def ablate_preprocessing(
    setup: ExperimentSetup,
    n_train: int = 150,
    n_test: int = 80,
    max_evaluations: int = 4000,
    n_verify: int = 50,
) -> PreprocessingAblation:
    """WMED-Pareto library reduction vs equal-size random reduction."""
    accelerator, profiles, space, evaluator = _sobel_space_and_evaluator(
        setup
    )
    sizes = space.slot_sizes()
    random_space = _random_space(
        accelerator, setup.library, profiles, sizes, setup.seed + 7
    )

    def run(sp: ConfigurationSpace) -> np.ndarray:
        train = build_training_set(sp, evaluator, n_train, rng=setup.seed)
        test = build_training_set(
            sp, evaluator, n_test, rng=setup.seed + 1
        )
        qor = select_best_model(
            fit_engines(sp, train, test, target="qor",
                        engines=["Random Forest"], seed=setup.seed)
        ).model
        hw = select_best_model(
            fit_engines(sp, train, test, target="area",
                        engines=["Random Forest"], seed=setup.seed)
        ).model
        pseudo = heuristic_pareto_construction(
            sp, qor, hw, max_evaluations=max_evaluations, rng=setup.seed
        )
        real = evaluator.evaluate_many(sp, pseudo.configs[:n_verify])
        qor_v = np.array([r.qor for r in real])
        area_v = np.array([r.area for r in real])
        return np.stack([1.0 - qor_v, area_v], axis=1)

    pareto_points = run(space)
    random_points = run(random_space)
    # One shared reference so the two hypervolumes are comparable.
    ref_area = (
        max(pareto_points[:, 1].max(), random_points[:, 1].max()) * 1.05
        + 1e-9
    )
    reference = (1.0, ref_area)
    return PreprocessingAblation(
        pareto_sizes=sizes,
        random_sizes=random_space.slot_sizes(),
        pareto_front_hv=hypervolume_2d(pareto_points, reference),
        random_front_hv=hypervolume_2d(random_points, reference),
    )


# -- 3. restart strategy -------------------------------------------------------


@dataclass
class RestartAblation:
    with_restarts_size: int
    without_restarts_size: int
    random_sampling_size: int
    with_restarts_hv: float
    without_restarts_hv: float
    random_sampling_hv: float


def ablate_restarts(
    setup: ExperimentSetup,
    n_train: int = 150,
    n_test: int = 80,
    max_evaluations: int = 5000,
) -> RestartAblation:
    """Algorithm 1 vs no-restart hill climbing vs random sampling, on
    the *estimated* objective space (same models for all)."""
    _, _, space, evaluator = _sobel_space_and_evaluator(setup)
    train = build_training_set(space, evaluator, n_train, rng=setup.seed)
    test = build_training_set(
        space, evaluator, n_test, rng=setup.seed + 1
    )
    qor = select_best_model(
        fit_engines(space, train, test, target="qor",
                    engines=["Random Forest"], seed=setup.seed)
    ).model
    hw = select_best_model(
        fit_engines(space, train, test, target="area",
                    engines=["Random Forest"], seed=setup.seed)
    ).model

    with_restarts = heuristic_pareto_construction(
        space, qor, hw, max_evaluations=max_evaluations,
        stagnation_limit=50, rng=setup.seed,
    )
    # An effectively infinite stagnation limit disables restarts.
    without_restarts = heuristic_pareto_construction(
        space, qor, hw, max_evaluations=max_evaluations,
        stagnation_limit=10**9, rng=setup.seed,
    )
    sampled = random_sampling(
        space, qor, hw, max_evaluations=max_evaluations, rng=setup.seed
    )

    # Estimated QoR has whatever scale the selected model emits (the
    # naive model predicts negative WMED sums), so the hypervolume
    # reference is derived from the pooled minimisation-space points.
    pooled = np.vstack(
        [r.points for r in (with_restarts, without_restarts, sampled)]
    )
    pooled_min = np.stack([-pooled[:, 0], pooled[:, 1]], axis=1)
    span = pooled_min.max(axis=0) - pooled_min.min(axis=0)
    reference = pooled_min.max(axis=0) + 0.05 * np.where(
        span > 0, span, 1.0
    )

    def hv(points: np.ndarray) -> float:
        pts = np.stack([-points[:, 0], points[:, 1]], axis=1)
        return hypervolume_2d(pts, reference=tuple(reference))

    return RestartAblation(
        with_restarts_size=len(with_restarts),
        without_restarts_size=len(without_restarts),
        random_sampling_size=len(sampled),
        with_restarts_hv=hv(with_restarts.points),
        without_restarts_hv=hv(without_restarts.points),
        random_sampling_hv=hv(sampled.points),
    )


# -- 4. QoR feature sets ------------------------------------------------------


@dataclass
class QorFeatureAblation:
    fidelity_wmed_only: float
    fidelity_wmed_plus_variance: float


def ablate_qor_features(
    setup: ExperimentSetup,
    n_train: int = 300,
    n_test: int = 200,
) -> QorFeatureAblation:
    """§4.1.2's claim: adding per-component error variance to the WMED
    features does not improve QoR-model fidelity."""
    from repro.ml.fidelity import fidelity
    from repro.ml.forest import RandomForestRegressor

    _, _, space, evaluator = _sobel_space_and_evaluator(setup)
    train = build_training_set(space, evaluator, n_train, rng=setup.seed)
    test = build_training_set(
        space, evaluator, n_test, rng=setup.seed + 1
    )

    def run(with_variance: bool) -> float:
        def features(configs):
            X = space.qor_features(configs)
            if with_variance:
                X = np.hstack(
                    [X, space.error_stat_features(configs, "error_var")]
                )
            return X

        model = RandomForestRegressor(
            n_estimators=100, max_features=0.7, rng=setup.seed
        )
        model.fit(features(train.configs), train.qor)
        return fidelity(test.qor, model.predict(features(test.configs)))

    return QorFeatureAblation(
        fidelity_wmed_only=run(False),
        fidelity_wmed_plus_variance=run(True),
    )


# -- 5. hardware feature sets -----------------------------------------------


@dataclass
class HwFeatureAblation:
    fidelity_by_feature_set: Dict[str, float]


def ablate_hw_features(
    setup: ExperimentSetup,
    n_train: int = 300,
    n_test: int = 200,
) -> HwFeatureAblation:
    """Area-model fidelity with different per-component feature sets."""
    _, _, space, evaluator = _sobel_space_and_evaluator(setup)
    train = build_training_set(space, evaluator, n_train, rng=setup.seed)
    test = build_training_set(
        space, evaluator, n_test, rng=setup.seed + 1
    )
    results: Dict[str, float] = {}
    for features in (("area",), ("area", "power"),
                     ("area", "power", "delay")):
        reports = fit_engines(
            space, train, test, target="area",
            engines=["Random Forest"], include_naive=False,
            hw_features=features, seed=setup.seed,
        )
        results["+".join(features)] = reports[0].fidelity_test
    return HwFeatureAblation(fidelity_by_feature_set=results)
