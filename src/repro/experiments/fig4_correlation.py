"""Figure 4 — correlation of estimated area vs. real (synthesised) area.

The paper scatter-plots estimated against real area for selected engines,
showing the naive model badly overestimating small accelerators (whose
logic the synthesiser collapses) while the random forest tracks the
diagonal.  This driver returns, per engine, the paired (real, estimated)
arrays plus Pearson correlation and relative RMSE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.accelerators.profiler import profile_accelerator
from repro.accelerators.sobel import SobelEdgeDetector
from repro.core.modeling import build_training_set, fit_engines
from repro.core.preprocessing import reduce_library
from repro.experiments.setup import ExperimentSetup, build_engine

#: Engines the paper highlights in the scatter plot.
FIG4_ENGINES = ("Random Forest", "Bayesian Ridge", "Decision Tree")


@dataclass
class Fig4Series:
    """Scatter data and summary statistics for one engine."""

    engine: str
    real_area: np.ndarray
    estimated_area: np.ndarray
    pearson_r: float
    relative_rmse: float


def fig4_correlation(
    setup: ExperimentSetup,
    n_train: int = 400,
    n_test: int = 400,
    engines: Sequence[str] = FIG4_ENGINES,
) -> List[Fig4Series]:
    """Estimated-vs-real area pairs on held-out configurations."""
    accelerator = SobelEdgeDetector()
    profiles = profile_accelerator(
        accelerator, setup.images, rng=setup.seed
    )
    space = reduce_library(accelerator, setup.library, profiles)
    evaluator = build_engine(accelerator, setup.images)
    train = build_training_set(space, evaluator, n_train, rng=setup.seed)
    test = build_training_set(
        space, evaluator, n_test, rng=setup.seed + 1
    )

    reports = fit_engines(
        space, train, test, target="area", engines=list(engines),
        include_naive=True, seed=setup.seed,
    )
    series: List[Fig4Series] = []
    real = test.area
    for report in reports:
        est = report.model.predict(test.configs)
        r = float(np.corrcoef(real, est)[0, 1]) if real.std() > 0 else 0.0
        rel_rmse = float(
            np.sqrt(np.mean((est - real) ** 2)) / max(real.mean(), 1e-12)
        )
        series.append(
            Fig4Series(
                engine=report.name,
                real_area=real.copy(),
                estimated_area=est,
                pearson_r=r,
                relative_rmse=rel_rmse,
            )
        )
    return series
