"""§4.2 timing claim — model estimation vs full analysis.

The paper reports ~10 s for the full analysis (synthesis + simulation) of
one generic-GF configuration and ~0.01 s for its model-based estimate —
three orders of magnitude.  This driver measures both paths on the same
machine and reports the achieved speed-up.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.accelerators.gaussian_generic import (
    GenericGaussianFilter,
    kernel_sweep,
)
from repro.accelerators.profiler import profile_accelerator
from repro.core.modeling import build_training_set, fit_engines, select_best_model
from repro.core.preprocessing import reduce_library
from repro.experiments.setup import ExperimentSetup, build_engine


@dataclass
class SpeedupResult:
    analysis_seconds_per_config: float
    estimate_seconds_per_config: float

    @property
    def speedup(self) -> float:
        return (
            self.analysis_seconds_per_config
            / self.estimate_seconds_per_config
        )


def estimation_speedup(
    setup: ExperimentSetup,
    n_analysis: int = 10,
    n_estimates: int = 2000,
    n_train: int = 100,
    n_kernels: int = 5,
    n_images: int = 2,
) -> SpeedupResult:
    """Measure per-configuration cost of both evaluation paths."""
    accelerator = GenericGaussianFilter()
    images = setup.images[:n_images]
    scenarios = [
        GenericGaussianFilter.kernel_extra(w)
        for w in kernel_sweep(n_kernels)
    ]
    profiles = profile_accelerator(
        accelerator, images, scenarios=scenarios, rng=setup.seed
    )
    space = reduce_library(accelerator, setup.library, profiles)
    evaluator = build_engine(accelerator, images, scenarios)

    train = build_training_set(
        space, evaluator, n_train, rng=setup.seed
    )
    test = build_training_set(
        space, evaluator, max(20, n_train // 2), rng=setup.seed + 1
    )
    qor_model = select_best_model(
        fit_engines(space, train, test, target="qor",
                    engines=["Random Forest"], seed=setup.seed)
    ).model
    hw_model = select_best_model(
        fit_engines(space, train, test, target="area",
                    engines=["Random Forest"], seed=setup.seed)
    ).model

    configs = space.random_configurations(
        max(n_analysis, 2), rng=setup.seed + 2
    )
    start = time.perf_counter()
    evaluator.evaluate_many(space, configs[:n_analysis])
    analysis = (time.perf_counter() - start) / n_analysis

    batch = space.random_configurations(n_estimates, rng=setup.seed + 3,
                                        unique=False)
    start = time.perf_counter()
    qor_model.predict(batch)
    hw_model.predict(batch)
    estimate = (time.perf_counter() - start) / n_estimates

    return SpeedupResult(
        analysis_seconds_per_config=analysis,
        estimate_seconds_per_config=estimate,
    )
