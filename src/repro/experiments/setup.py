"""Shared experiment fixtures: the component library and benchmark images.

Generating and characterising a library takes tens of seconds, so the
default setup caches it in the persistent experiment store
(:mod:`repro.store`) — content-addressed by generation plan, under
``REPRO_STORE_DIR`` (legacy ``REPRO_CACHE_DIR``, else ``.repro-store``).
Libraries cached by older versions as loose ``.cache/library_*.json``
files are imported into the store on first use.  ``REPRO_SCALE``
overrides the library scale: 1.0 regenerates the paper-size Table 2
library (tens of thousands of components — expect a long build).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.core.engine import EvaluationEngine
from repro.errors import LibraryError
from repro.imaging.datasets import benchmark_images
from repro.library.generation import (
    PAPER_COUNTS,
    GenerationPlan,
    generate_library,
    scaled_plan,
)
from repro.library.io import load_library
from repro.library.library import ComponentLibrary
from repro.store import ArtifactStore, content_hash, open_store
from repro.workloads import WorkloadBundle, WorkloadRegistry, build_bundle

#: Default library scale relative to Table 2 (0.02 => ~800 components).
DEFAULT_SCALE = 0.02

#: Environment knob overriding the default library scale.
SCALE_ENV = "REPRO_SCALE"


def default_scale() -> float:
    """Library scale from ``REPRO_SCALE`` (validated), else the default.

    Blank or non-numeric values raise a
    :class:`~repro.errors.ValidationError` naming the knob instead of a
    raw ``float()`` traceback mid-setup.
    """
    raw = os.environ.get(SCALE_ENV)
    if raw is None:
        return DEFAULT_SCALE
    from repro.utils.validation import check_env_float

    return check_env_float(raw, source=SCALE_ENV, minimum=0.0)

#: Default benchmark image geometry (rows, cols).  The paper uses
#: 384x256 px; benches default to quarter-size for turnaround and accept
#: the paper geometry via ``paper_scale=True``.
DEFAULT_SHAPE = (128, 192)
PAPER_SHAPE = (256, 384)


@dataclass
class ExperimentSetup:
    """Everything the experiment drivers need."""

    library: ComponentLibrary
    images: List[np.ndarray]
    seed: int = 0

    @property
    def image_shape(self) -> Tuple[int, int]:
        return tuple(self.images[0].shape)


#: Per-kind Table 2 reference counts used to scale workload libraries
#: (the largest paper count of each kind, so e.g. any adder signature
#: scales like the 8-bit adder pool).
KIND_REFERENCE = {
    kind: max(
        count for (k, _), count in PAPER_COUNTS.items() if k == kind
    )
    for kind in ("add", "sub", "mul")
}


def experiment_store() -> ArtifactStore:
    """The shared experiment store (env-resolved root)."""
    return open_store()


def _plan_key(kind: str, plan: GenerationPlan, scale: float) -> str:
    """Content key of a generated library: everything that shapes it."""
    return content_hash(
        {
            "kind": kind,
            "counts": [
                [k, w, count]
                for (k, w), count in sorted(plan.counts.items())
            ],
            "seed": plan.seed,
            "sample_size": plan.sample_size,
            "scale": scale,
        }
    )


def default_library_key(plan: GenerationPlan, scale: float) -> str:
    """Store key of the whole-library blob of a default Table 2 plan.

    Public because two CLI surfaces must agree on it: ``repro
    generate-library --store`` writes the blob under this key so
    ``repro run --store`` / :func:`scaled_library` read it back warm.
    """
    return _plan_key("default-library", plan, scale)


def _legacy_cache_file(filename: str) -> Optional[Path]:
    """A pre-store ``.cache/`` library JSON, if one exists."""
    root = os.environ.get("REPRO_CACHE_DIR") or ".cache"
    path = Path(root) / filename
    return path if path.is_file() else None


def _cached_library(
    store: Optional[ArtifactStore],
    key: str,
    legacy_name: str,
    plan: GenerationPlan,
    workers: Optional[int] = None,
) -> ComponentLibrary:
    """Load the library from the store (or a legacy file), else build it.

    Misses build through the parallel construction pipeline
    (:func:`repro.library.pipeline.build_library`): ``workers``
    processes and per-component memoisation in ``store``, so even a
    whole-library miss only recomputes components no previous plan
    characterised.  With ``store=None`` (``use_cache=False``) nothing
    is read or written — the library is always regenerated.  Legacy
    loose JSON caches are migrated into the store so the old
    ``.cache/`` path keeps paying off after an upgrade; an unreadable
    legacy file is a transparent miss, matching the store's
    recompute-never-crash contract.
    """
    if store is None:
        return generate_library(plan, workers=workers)
    library = store.get("library", key)
    if library is not None:
        return library
    legacy = _legacy_cache_file(legacy_name)
    library = None
    if legacy is not None:
        try:
            library = load_library(legacy)
        except (OSError, ValueError, LibraryError):
            library = None
    if library is None:
        # record_run=False: this build is a sub-step of the calling
        # pipeline run, which records its own manifest — the ledger
        # lists runs, not stages.
        from repro.library.pipeline import build_library

        library = build_library(
            plan, workers=workers, store=store, record_run=False
        ).library
    store.put(
        "library", key,
        library,
        meta={"components": len(library)},
    )
    return library


def workload_plan(
    accelerator: ImageAccelerator,
    scale: float,
    seed: int = 0,
    floor: int = 64,
) -> GenerationPlan:
    """A generation plan covering exactly ``accelerator``'s signatures.

    The window family derives operand widths from the arithmetic, so a
    workload may need signatures outside the paper's Table 2 set (e.g.
    14-bit adders); this sizes each one from the per-kind Table 2
    reference count at ``scale``, floored so small signatures stay
    populated enough for per-op Pareto filtering.
    """
    counts = {
        (kind, width): max(floor, int(round(KIND_REFERENCE[kind] * scale)))
        for kind, width in accelerator.op_inventory()
    }
    return GenerationPlan(counts, seed=seed)


@dataclass
class WorkloadSetup:
    """A materialised workload plus the library covering its signatures."""

    bundle: WorkloadBundle
    library: ComponentLibrary
    seed: int = 0

    @property
    def accelerator(self) -> ImageAccelerator:
        return self.bundle.accelerator

    @property
    def images(self) -> List[np.ndarray]:
        return self.bundle.images

    @property
    def scenarios(self):
        return self.bundle.scenarios


def workload_setup(
    name: str,
    scale: Optional[float] = None,
    n_images: int = 4,
    image_shape: Optional[Tuple[int, int]] = None,
    seed: int = 0,
    use_cache: bool = True,
    registry: Optional[WorkloadRegistry] = None,
    workers: Optional[int] = None,
) -> WorkloadSetup:
    """Build (or load from cache) everything a workload DSE run needs.

    The library is cached per *signature set*, so workloads sharing
    operation signatures (e.g. ``gaussian5`` and ``box5``) share one
    characterised library on disk; misses build through the parallel
    pipeline with ``workers`` processes (``None``: ``REPRO_WORKERS``).
    """
    if scale is None:
        scale = default_scale()
    if image_shape is None:
        image_shape = DEFAULT_SHAPE
    bundle = build_bundle(
        name, n_images=n_images, image_shape=image_shape,
        registry=registry,
    )
    plan = workload_plan(bundle.accelerator, scale, seed=seed)
    tag = "-".join(
        f"{kind}{width}" for kind, width in sorted(plan.counts)
    )
    store = experiment_store() if use_cache else None
    library = _cached_library(
        store,
        _plan_key("workload-library", plan, scale),
        f"library_wl_{tag}_scale_{scale:g}_seed_{seed}.json",
        plan,
        workers=workers,
    )
    return WorkloadSetup(bundle=bundle, library=library, seed=seed)


def run_workload_pipeline(
    name: str,
    scale: Optional[float] = None,
    n_images: int = 4,
    train: int = 150,
    evals: int = 10_000,
    seed: int = 0,
    workers: Optional[int] = None,
    store: Optional[ArtifactStore] = None,
    out: Optional[str] = None,
    command: str = "workloads",
):
    """Run the full autoAx pipeline on a registered workload.

    The one shared entry point of ``repro workloads run``, ``repro runs
    resume`` and the serving layer: all three build the identical
    :class:`~repro.core.pipeline.AutoAxConfig` from the same parameters,
    so their results are byte-identical and they share the same
    store-stage cache keys.  ``command`` only labels the run-ledger
    manifest (``"workloads"`` keeps the run resumable by ``repro runs
    resume``).  Returns ``(setup, result)``.
    """
    from repro.core.pipeline import AutoAx, AutoAxConfig

    setup = workload_setup(
        name, scale=scale, n_images=n_images, seed=seed,
    )
    config = AutoAxConfig(
        n_train=train,
        n_test=max(2, train // 2),
        max_evaluations=evals,
        seed=seed,
        workers=workers,
    )
    pipeline = AutoAx(
        setup.accelerator,
        setup.library,
        setup.images,
        scenarios=setup.scenarios,
        config=config,
        store=store,
        run_kind="workload",
        run_label=name,
        run_params={
            "command": command,
            "name": name,
            "scale": scale,
            "images": n_images,
            "train": train,
            "evals": evals,
            "seed": seed,
            "out": out,
        },
    )
    return setup, pipeline.run()


def build_workload_engine(
    setup: WorkloadSetup, workers: Optional[int] = None
) -> EvaluationEngine:
    """The evaluation engine of a materialised workload setup."""
    return build_engine(
        setup.accelerator,
        setup.images,
        scenarios=setup.scenarios,
        workers=workers,
    )


def fit_search_models(
    space,
    engine: EvaluationEngine,
    n_train: int,
    n_test: int,
    engines: Sequence[str] = ("K-Neighbors",),
    seed: int = 0,
    workers: Optional[int] = None,
):
    """Fit the (QoR, area) estimation models the search layer consumes.

    One shared constructor for the CLI, benchmarks and experiment
    drivers: the training and held-out sets follow the
    ``rng=seed`` / ``seed + 1`` convention, engines are fidelity-ranked
    per target, and the best model of each target is returned as
    ``(qor_model, hw_model)``.
    """
    from repro.core.modeling import (
        build_training_set,
        fit_engines,
        select_best_model,
    )

    train = build_training_set(
        space, engine, n_train, rng=seed, workers=workers
    )
    test = build_training_set(
        space, engine, n_test, rng=seed + 1, workers=workers
    )
    qor_model = select_best_model(
        fit_engines(space, train, test, target="qor",
                    engines=list(engines), seed=seed)
    ).model
    hw_model = select_best_model(
        fit_engines(space, train, test, target="area",
                    engines=list(engines), seed=seed)
    ).model
    return qor_model, hw_model


def build_engine(
    accelerator: ImageAccelerator,
    images: Sequence[np.ndarray],
    scenarios: Optional[Sequence[Dict[str, int]]] = None,
    workers: Optional[int] = None,
) -> EvaluationEngine:
    """The experiment drivers' evaluation engine.

    One shared constructor so every driver (and benchmark) picks up the
    compiled/batched real-evaluation path and the ``REPRO_WORKERS``
    parallelism knob uniformly.
    """
    return EvaluationEngine(
        accelerator, images, scenarios=scenarios, workers=workers
    )


def scaled_library(
    scale: float,
    seed: int = 0,
    store: Optional[ArtifactStore] = None,
    workers: Optional[int] = None,
) -> ComponentLibrary:
    """The Table 2 library at ``scale``, store-cached when asked.

    Shares cache keys (and the legacy-file import) with
    :func:`default_setup`, so the CLI's ``run --store`` and the
    experiment drivers reuse one characterised library.
    """
    plan = scaled_plan(scale, seed=seed)
    return _cached_library(
        store,
        default_library_key(plan, scale),
        f"library_scale_{scale:g}_seed_{seed}.json",
        plan,
        workers=workers,
    )


def default_setup(
    scale: Optional[float] = None,
    n_images: int = 8,
    image_shape: Optional[Tuple[int, int]] = None,
    seed: int = 0,
    use_cache: bool = True,
    workers: Optional[int] = None,
) -> ExperimentSetup:
    """Build (or load from the store) the default experiment setup."""
    if scale is None:
        scale = default_scale()
    if image_shape is None:
        image_shape = DEFAULT_SHAPE
    store = experiment_store() if use_cache else None
    library = scaled_library(
        scale, seed=seed, store=store, workers=workers
    )
    images = benchmark_images(n_images, shape=image_shape)
    return ExperimentSetup(library=library, images=images, seed=seed)
