"""Shared experiment fixtures: the component library and benchmark images.

Generating and characterising a library takes tens of seconds, so the
default setup caches it as JSON under ``.cache/`` in the working tree (or
``REPRO_CACHE_DIR``).  ``REPRO_SCALE`` overrides the library scale: 1.0
regenerates the paper-size Table 2 library (tens of thousands of
components — expect a long build).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.core.engine import EvaluationEngine
from repro.imaging.datasets import benchmark_images
from repro.library.generation import generate_library, scaled_plan
from repro.library.io import load_library, save_library
from repro.library.library import ComponentLibrary

#: Default library scale relative to Table 2 (0.02 => ~800 components).
DEFAULT_SCALE = 0.02

#: Default benchmark image geometry (rows, cols).  The paper uses
#: 384x256 px; benches default to quarter-size for turnaround and accept
#: the paper geometry via ``paper_scale=True``.
DEFAULT_SHAPE = (128, 192)
PAPER_SHAPE = (256, 384)


@dataclass
class ExperimentSetup:
    """Everything the experiment drivers need."""

    library: ComponentLibrary
    images: List[np.ndarray]
    seed: int = 0

    @property
    def image_shape(self) -> Tuple[int, int]:
        return tuple(self.images[0].shape)


def _cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".cache"))


def build_engine(
    accelerator: ImageAccelerator,
    images: Sequence[np.ndarray],
    scenarios: Optional[Sequence[Dict[str, int]]] = None,
    workers: Optional[int] = None,
) -> EvaluationEngine:
    """The experiment drivers' evaluation engine.

    One shared constructor so every driver (and benchmark) picks up the
    compiled/batched real-evaluation path and the ``REPRO_WORKERS``
    parallelism knob uniformly.
    """
    return EvaluationEngine(
        accelerator, images, scenarios=scenarios, workers=workers
    )


def default_setup(
    scale: Optional[float] = None,
    n_images: int = 8,
    image_shape: Optional[Tuple[int, int]] = None,
    seed: int = 0,
    use_cache: bool = True,
) -> ExperimentSetup:
    """Build (or load from cache) the default experiment setup."""
    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", DEFAULT_SCALE))
    if image_shape is None:
        image_shape = DEFAULT_SHAPE
    cache = _cache_dir() / f"library_scale_{scale:g}_seed_{seed}.json"
    library = None
    if use_cache and cache.exists():
        library = load_library(cache)
    if library is None:
        library = generate_library(scaled_plan(scale, seed=seed))
        if use_cache:
            save_library(library, cache)
    images = benchmark_images(n_images, shape=image_shape)
    return ExperimentSetup(library=library, images=images, seed=seed)
