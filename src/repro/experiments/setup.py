"""Shared experiment fixtures: the component library and benchmark images.

Generating and characterising a library takes tens of seconds, so the
default setup caches it as JSON under ``.cache/`` in the working tree (or
``REPRO_CACHE_DIR``).  ``REPRO_SCALE`` overrides the library scale: 1.0
regenerates the paper-size Table 2 library (tens of thousands of
components — expect a long build).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.core.engine import EvaluationEngine
from repro.imaging.datasets import benchmark_images
from repro.library.generation import (
    PAPER_COUNTS,
    GenerationPlan,
    generate_library,
    scaled_plan,
)
from repro.library.io import load_library, save_library
from repro.library.library import ComponentLibrary
from repro.workloads import WorkloadBundle, WorkloadRegistry, build_bundle

#: Default library scale relative to Table 2 (0.02 => ~800 components).
DEFAULT_SCALE = 0.02

#: Default benchmark image geometry (rows, cols).  The paper uses
#: 384x256 px; benches default to quarter-size for turnaround and accept
#: the paper geometry via ``paper_scale=True``.
DEFAULT_SHAPE = (128, 192)
PAPER_SHAPE = (256, 384)


@dataclass
class ExperimentSetup:
    """Everything the experiment drivers need."""

    library: ComponentLibrary
    images: List[np.ndarray]
    seed: int = 0

    @property
    def image_shape(self) -> Tuple[int, int]:
        return tuple(self.images[0].shape)


#: Per-kind Table 2 reference counts used to scale workload libraries
#: (the largest paper count of each kind, so e.g. any adder signature
#: scales like the 8-bit adder pool).
KIND_REFERENCE = {
    kind: max(
        count for (k, _), count in PAPER_COUNTS.items() if k == kind
    )
    for kind in ("add", "sub", "mul")
}


def _cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".cache"))


def workload_plan(
    accelerator: ImageAccelerator,
    scale: float,
    seed: int = 0,
    floor: int = 64,
) -> GenerationPlan:
    """A generation plan covering exactly ``accelerator``'s signatures.

    The window family derives operand widths from the arithmetic, so a
    workload may need signatures outside the paper's Table 2 set (e.g.
    14-bit adders); this sizes each one from the per-kind Table 2
    reference count at ``scale``, floored so small signatures stay
    populated enough for per-op Pareto filtering.
    """
    counts = {
        (kind, width): max(floor, int(round(KIND_REFERENCE[kind] * scale)))
        for kind, width in accelerator.op_inventory()
    }
    return GenerationPlan(counts, seed=seed)


@dataclass
class WorkloadSetup:
    """A materialised workload plus the library covering its signatures."""

    bundle: WorkloadBundle
    library: ComponentLibrary
    seed: int = 0

    @property
    def accelerator(self) -> ImageAccelerator:
        return self.bundle.accelerator

    @property
    def images(self) -> List[np.ndarray]:
        return self.bundle.images

    @property
    def scenarios(self):
        return self.bundle.scenarios


def workload_setup(
    name: str,
    scale: Optional[float] = None,
    n_images: int = 4,
    image_shape: Optional[Tuple[int, int]] = None,
    seed: int = 0,
    use_cache: bool = True,
    registry: Optional[WorkloadRegistry] = None,
) -> WorkloadSetup:
    """Build (or load from cache) everything a workload DSE run needs.

    The library is cached per *signature set*, so workloads sharing
    operation signatures (e.g. ``gaussian5`` and ``box5``) share one
    characterised library on disk.
    """
    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", DEFAULT_SCALE))
    if image_shape is None:
        image_shape = DEFAULT_SHAPE
    bundle = build_bundle(
        name, n_images=n_images, image_shape=image_shape,
        registry=registry,
    )
    plan = workload_plan(bundle.accelerator, scale, seed=seed)
    tag = "-".join(
        f"{kind}{width}" for kind, width in sorted(plan.counts)
    )
    cache = _cache_dir() / (
        f"library_wl_{tag}_scale_{scale:g}_seed_{seed}.json"
    )
    library = None
    if use_cache and cache.exists():
        library = load_library(cache)
    if library is None:
        library = generate_library(plan)
        if use_cache:
            save_library(library, cache)
    return WorkloadSetup(bundle=bundle, library=library, seed=seed)


def build_workload_engine(
    setup: WorkloadSetup, workers: Optional[int] = None
) -> EvaluationEngine:
    """The evaluation engine of a materialised workload setup."""
    return build_engine(
        setup.accelerator,
        setup.images,
        scenarios=setup.scenarios,
        workers=workers,
    )


def build_engine(
    accelerator: ImageAccelerator,
    images: Sequence[np.ndarray],
    scenarios: Optional[Sequence[Dict[str, int]]] = None,
    workers: Optional[int] = None,
) -> EvaluationEngine:
    """The experiment drivers' evaluation engine.

    One shared constructor so every driver (and benchmark) picks up the
    compiled/batched real-evaluation path and the ``REPRO_WORKERS``
    parallelism knob uniformly.
    """
    return EvaluationEngine(
        accelerator, images, scenarios=scenarios, workers=workers
    )


def default_setup(
    scale: Optional[float] = None,
    n_images: int = 8,
    image_shape: Optional[Tuple[int, int]] = None,
    seed: int = 0,
    use_cache: bool = True,
) -> ExperimentSetup:
    """Build (or load from cache) the default experiment setup."""
    if scale is None:
        scale = float(os.environ.get("REPRO_SCALE", DEFAULT_SCALE))
    if image_shape is None:
        image_shape = DEFAULT_SHAPE
    cache = _cache_dir() / f"library_scale_{scale:g}_seed_{seed}.json"
    library = None
    if use_cache and cache.exists():
        library = load_library(cache)
    if library is None:
        library = generate_library(scaled_plan(scale, seed=seed))
        if use_cache:
            save_library(library, cache)
    images = benchmark_images(n_images, shape=image_shape)
    return ExperimentSetup(library=library, images=images, seed=seed)
