"""The workload registry: named (accelerator, images, scenarios) bundles.

A *workload* is everything one DSE run needs, under a stable name: a
factory for the accelerator, a scenario generator (the per-run ``extra``
coefficient sets) and benchmark-image defaults.  The registry maps names
to workloads so every consumer — experiment drivers, the CLI, benchmarks,
examples — resolves scenarios the same way instead of re-hard-coding the
three case studies.

Workloads are declared cheap (factories, not instances); nothing heavy is
built until :func:`build_bundle` materialises the accelerator, images and
scenario list for an actual run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.accelerators.base import ImageAccelerator
from repro.errors import WorkloadError
from repro.imaging.datasets import benchmark_images

#: Scenario factory: returns the ``extra``-input dict of every scenario,
#: or None for a single default-coefficient run.
ScenarioFactory = Callable[[], Optional[List[Dict[str, int]]]]

#: Default benchmark-image count and geometry of workload bundles.
DEFAULT_IMAGES = 4
DEFAULT_IMAGE_SHAPE = (64, 96)


@dataclass(frozen=True)
class Workload:
    """One registered workload (all parts lazy)."""

    name: str
    description: str
    factory: Callable[[], ImageAccelerator]
    scenario_factory: Optional[ScenarioFactory] = None
    tags: Tuple[str, ...] = ()

    def build_accelerator(self) -> ImageAccelerator:
        accelerator = self.factory()
        if not isinstance(accelerator, ImageAccelerator):
            raise WorkloadError(
                f"workload {self.name!r} factory returned "
                f"{type(accelerator).__name__}, not an ImageAccelerator"
            )
        return accelerator

    def build_scenarios(self) -> Optional[List[Dict[str, int]]]:
        if self.scenario_factory is None:
            return None
        scenarios = self.scenario_factory()
        if scenarios is not None and not scenarios:
            raise WorkloadError(
                f"workload {self.name!r} produced an empty scenario list"
            )
        return scenarios


@dataclass
class WorkloadBundle:
    """A materialised workload, ready for an evaluation engine."""

    workload: Workload
    accelerator: ImageAccelerator
    images: List[np.ndarray]
    scenarios: Optional[List[Dict[str, int]]]

    @property
    def run_count(self) -> int:
        """(image x scenario) simulation runs per configuration."""
        return len(self.images) * len(self.scenarios or [None])


class WorkloadRegistry:
    """Name -> :class:`Workload` mapping with insertion order."""

    def __init__(self):
        self._workloads: Dict[str, Workload] = {}

    def register(self, workload: Workload) -> Workload:
        if not workload.name:
            raise WorkloadError("workload name must be non-empty")
        if workload.name in self._workloads:
            raise WorkloadError(
                f"workload {workload.name!r} is already registered"
            )
        self._workloads[workload.name] = workload
        return workload

    def add(
        self,
        name: str,
        description: str,
        factory: Callable[[], ImageAccelerator],
        scenario_factory: Optional[ScenarioFactory] = None,
        tags: Tuple[str, ...] = (),
    ) -> Workload:
        """Build and register a :class:`Workload` in one call."""
        return self.register(
            Workload(name, description, factory, scenario_factory, tags)
        )

    def get(self, name: str) -> Workload:
        try:
            return self._workloads[name]
        except KeyError:
            known = ", ".join(sorted(self._workloads)) or "<none>"
            raise WorkloadError(
                f"unknown workload {name!r}; registered: {known}"
            ) from None

    def names(self) -> List[str]:
        return list(self._workloads)

    def __iter__(self) -> Iterator[Workload]:
        return iter(self._workloads.values())

    def __len__(self) -> int:
        return len(self._workloads)

    def __contains__(self, name: str) -> bool:
        return name in self._workloads


#: The process-wide default registry (populated by the catalog module).
WORKLOADS = WorkloadRegistry()


def build_bundle(
    name: str,
    n_images: int = DEFAULT_IMAGES,
    image_shape: Tuple[int, int] = DEFAULT_IMAGE_SHAPE,
    registry: Optional[WorkloadRegistry] = None,
) -> WorkloadBundle:
    """Materialise workload ``name`` into an engine-ready bundle."""
    registry = registry if registry is not None else WORKLOADS
    workload = registry.get(name)
    return WorkloadBundle(
        workload=workload,
        accelerator=workload.build_accelerator(),
        images=benchmark_images(n_images, shape=image_shape),
        scenarios=workload.build_scenarios(),
    )
