"""The built-in workload catalog.

Registers the paper's three case studies plus a family of parameterized
N x N window convolutions built on
:class:`~repro.accelerators.window.WindowAccelerator`:

* 5x5 Gaussian smoothing (runtime coefficients, sigma-sweep scenarios),
* 5x5 and 3x3 box/tent blurs (runtime coefficients; the 3x3 variant at a
  reduced 6-bit coefficient depth),
* 3x3 Laplacian sharpen and unsharp masks (fixed signed kernels),
* 5x5 Laplacian-of-Gaussian edge enhancement (fixed, multiplier-less),
* separable 5x5 Gaussian (row/column coefficient vectors).

Every entry is declared through the same :class:`Workload` record, so DSE
drivers, the CLI, benchmarks and examples pick up new scenarios by name.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.accelerators.gaussian_fixed import FixedGaussianFilter
from repro.accelerators.gaussian_generic import (
    GenericGaussianFilter,
    kernel_sweep,
)
from repro.accelerators.sobel import SobelEdgeDetector
from repro.accelerators.window import (
    WindowAccelerator,
    WindowSpec,
    gaussian_window,
    quantize_kernel,
)
from repro.workloads.registry import WORKLOADS, WorkloadRegistry

#: Sigma sweep of the 5x5 Gaussian scenarios.
GAUSSIAN5_SIGMAS = (0.8, 1.1, 1.4, 1.7, 2.0)


def _gaussian_1d(size: int, sigma: float) -> List[float]:
    half = size // 2
    return [
        math.exp(-(d * d) / (2.0 * sigma * sigma))
        for d in range(-half, half + 1)
    ]


def _outer(vector: Tuple[int, ...]) -> List[float]:
    return [float(a * b) for a in vector for b in vector]


# -- window specs ----------------------------------------------------------

GAUSSIAN5_SPEC = WindowSpec(
    name="gaussian5",
    size=5,
    mode="general",
    shift=8,
    weight_sum=256,
    description="5x5 Gaussian smoothing, runtime 8-bit coefficients",
)

BOX5_SPEC = WindowSpec(
    name="box5",
    size=5,
    mode="general",
    shift=8,
    weight_sum=256,
    description="5x5 box/tent blur, runtime 8-bit coefficients",
)

BOX3_6B_SPEC = WindowSpec(
    name="box3_6b",
    size=3,
    mode="general",
    shift=6,
    coeff_bits=6,
    weight_sum=64,
    description="3x3 blur at reduced 6-bit coefficient depth",
)

SHARPEN3_SPEC = WindowSpec(
    name="sharpen3",
    size=3,
    mode="fixed",
    weights=(0, -1, 0, -1, 5, -1, 0, -1, 0),
    shift=0,
    description="3x3 Laplacian sharpen, fixed signed kernel",
)

UNSHARP3_SPEC = WindowSpec(
    name="unsharp3",
    size=3,
    mode="fixed",
    weights=(-1, -1, -1, -1, 12, -1, -1, -1, -1),
    shift=2,
    description="3x3 unsharp mask (sum 4, shift 2), fixed signed kernel",
)

LOG5_SPEC = WindowSpec(
    name="log5",
    size=5,
    mode="fixed",
    weights=(
        0, 0, -1, 0, 0,
        0, -1, -2, -1, 0,
        -1, -2, 16, -2, -1,
        0, -1, -2, -1, 0,
        0, 0, -1, 0, 0,
    ),
    absolute=True,
    description="5x5 Laplacian-of-Gaussian edge enhance, multiplier-less",
)

GAUSSIAN5_SEP_SPEC = WindowSpec(
    name="gaussian5_sep",
    size=5,
    mode="separable",
    shift=8,
    coeff_bits=5,
    weight_sum=16,
    description="separable 5x5 Gaussian, 2x5 runtime coefficient vectors",
)


# -- scenario factories -----------------------------------------------------

def gaussian5_scenarios() -> List[Dict[str, int]]:
    """Quantised 5x5 Gaussian kernels over the sigma sweep."""
    accelerator = WindowAccelerator(GAUSSIAN5_SPEC)
    return [
        accelerator.kernel_extra(
            quantize_kernel(gaussian_window(5, sigma), 256)
        )
        for sigma in GAUSSIAN5_SIGMAS
    ]


def box5_scenarios() -> List[Dict[str, int]]:
    """Box, tent and soft-box 5x5 kernels, all summing to 256."""
    accelerator = WindowAccelerator(BOX5_SPEC)
    shapes = (
        [1.0] * 25,
        _outer((1, 2, 3, 2, 1)),
        _outer((2, 3, 3, 3, 2)),
    )
    return [
        accelerator.kernel_extra(quantize_kernel(shape, 256))
        for shape in shapes
    ]


def box3_6b_scenarios() -> List[Dict[str, int]]:
    """Box and tent 3x3 kernels quantised to the 6-bit budget (sum 64)."""
    accelerator = WindowAccelerator(BOX3_6B_SPEC)
    shapes = ([1.0] * 9, _outer((1, 2, 1)))
    return [
        accelerator.kernel_extra(
            quantize_kernel(shape, 64, coeff_max=63)
        )
        for shape in shapes
    ]


def gaussian5_sep_scenarios() -> List[Dict[str, int]]:
    """Separable sigma sweep: 1-D kernels quantised to sum 16 per axis."""
    accelerator = WindowAccelerator(GAUSSIAN5_SEP_SPEC)
    scenarios = []
    for sigma in GAUSSIAN5_SIGMAS:
        axis = quantize_kernel(_gaussian_1d(5, sigma), 16, coeff_max=16)
        scenarios.append(accelerator.kernel_extra(axis + axis))
    return scenarios


def generic_gf_scenarios() -> List[Dict[str, int]]:
    """The paper's sigma sweep of the generic 3x3 Gaussian filter."""
    return [
        GenericGaussianFilter.kernel_extra(w) for w in kernel_sweep(5)
    ]


def register_catalog(registry: WorkloadRegistry) -> None:
    """Register every built-in workload into ``registry``."""
    registry.add(
        "sobel",
        "3x3 Sobel vertical-edge detector (paper Fig. 2a)",
        SobelEdgeDetector,
        tags=("seed", "edge"),
    )
    registry.add(
        "fixed_gf",
        "3x3 Gaussian filter, constant MCM coefficients (paper Fig. 2b)",
        FixedGaussianFilter,
        tags=("seed", "blur"),
    )
    registry.add(
        "generic_gf",
        "3x3 Gaussian filter, runtime coefficients (paper Fig. 2c)",
        GenericGaussianFilter,
        scenario_factory=generic_gf_scenarios,
        tags=("seed", "blur"),
    )
    for spec, scenarios, tags in (
        (GAUSSIAN5_SPEC, gaussian5_scenarios, ("family", "blur")),
        (BOX5_SPEC, box5_scenarios, ("family", "blur")),
        (BOX3_6B_SPEC, box3_6b_scenarios, ("family", "blur")),
        (SHARPEN3_SPEC, None, ("family", "sharpen")),
        (UNSHARP3_SPEC, None, ("family", "sharpen")),
        (LOG5_SPEC, None, ("family", "edge")),
        (GAUSSIAN5_SEP_SPEC, gaussian5_sep_scenarios,
         ("family", "blur", "separable")),
    ):
        registry.add(
            spec.name,
            spec.description,
            (lambda s=spec: WindowAccelerator(s)),
            scenario_factory=scenarios,
            tags=tags,
        )


register_catalog(WORKLOADS)
