"""Workload registry: named accelerator + images + scenarios bundles.

Importing this package populates the default registry with the built-in
catalog (the three paper case studies and the N x N window family)::

    from repro.workloads import WORKLOADS, build_bundle

    bundle = build_bundle("gaussian5")
    engine = EvaluationEngine(
        bundle.accelerator, bundle.images, bundle.scenarios
    )
"""

from repro.workloads.registry import (
    DEFAULT_IMAGE_SHAPE,
    DEFAULT_IMAGES,
    WORKLOADS,
    Workload,
    WorkloadBundle,
    WorkloadRegistry,
    build_bundle,
)
from repro.workloads import catalog as _catalog  # registers built-ins
from repro.workloads.catalog import register_catalog

__all__ = [
    "DEFAULT_IMAGE_SHAPE",
    "DEFAULT_IMAGES",
    "WORKLOADS",
    "Workload",
    "WorkloadBundle",
    "WorkloadRegistry",
    "build_bundle",
    "register_catalog",
]
