"""Dispatch from behavioural circuit models to structural netlists."""

from __future__ import annotations

from repro.circuits.adders import (
    AlmostCorrectAdder,
    LowerOrAdder,
    QuAdAdder,
    TruncatedAdder,
)
from repro.circuits.base import (
    ArithmeticCircuit,
    ExactAdder,
    ExactMultiplier,
    ExactSubtractor,
)
from repro.circuits.multipliers import (
    DrumMultiplier,
    MaskedMultiplier,
    MitchellMultiplier,
    RecursiveApproxMultiplier,
)
from repro.circuits.subtractors import BlockSubtractor, TruncatedSubtractor
from repro.errors import NetlistError
from repro.netlist import builders_adder as adders
from repro.netlist import builders_multiplier as mults
from repro.netlist.netlist import Netlist

#: Builder dispatch table, ordered so subclasses are matched before their
#: base classes (GeArAdder before QuAdAdder, BAM before MaskedMultiplier).
_BUILDERS = (
    (ExactAdder, adders.build_exact_adder),
    (TruncatedAdder, adders.build_truncated_adder),
    (LowerOrAdder, adders.build_lower_or_adder),
    (AlmostCorrectAdder, adders.build_almost_correct_adder),
    (QuAdAdder, adders.build_quad_adder),
    (ExactSubtractor, adders.build_exact_subtractor),
    (TruncatedSubtractor, adders.build_truncated_subtractor),
    (BlockSubtractor, adders.build_block_subtractor),
    (RecursiveApproxMultiplier, mults.build_recursive_multiplier),
    (MitchellMultiplier, mults.build_mitchell_multiplier),
    (DrumMultiplier, mults.build_drum_multiplier),
    (ExactMultiplier, None),  # exact multiplier builds as a full-mask array
    (MaskedMultiplier, mults.build_masked_multiplier),
)


def build_netlist(circuit: ArithmeticCircuit) -> Netlist:
    """Return the gate-level netlist implementing ``circuit``."""
    if isinstance(circuit, ExactMultiplier):
        full = MaskedMultiplier(
            circuit.width,
            [(1 << circuit.width) - 1] * circuit.width,
            name=circuit.name,
        )
        return mults.build_masked_multiplier(full)
    for klass, builder in _BUILDERS:
        if builder is not None and isinstance(circuit, klass):
            netlist = builder(circuit)
            netlist.validate()
            return netlist
    raise NetlistError(
        f"no netlist builder for circuit family {type(circuit).__name__}"
    )
