"""Reusable structural building blocks: ripple chains and vector adders."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.netlist.cells import CELLS
from repro.netlist.netlist import CONST0, CONST1, Netlist


def carry_chain(
    netlist: Netlist,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    carry_in: int = CONST0,
) -> int:
    """Ripple only the carry through ``a + b`` and return the carry-out.

    Used for carry/borrow *prediction* segments where the sum bits are not
    needed: each position costs a single MAJ3 cell.
    """
    carry = carry_in
    for a, b in zip(a_bits, b_bits):
        (carry,) = netlist.add_gate(CELLS["MAJ3"], [a, b, carry])
    return carry


def ripple_add(
    netlist: Netlist,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    carry_in: int = CONST0,
) -> Tuple[List[int], int]:
    """Ripple-carry addition of two equal-width bit vectors.

    Returns ``(sum_bits, carry_out)``.
    """
    if len(a_bits) != len(b_bits):
        raise ValueError("ripple_add needs equal-width vectors")
    sums: List[int] = []
    carry = carry_in
    for a, b in zip(a_bits, b_bits):
        s, carry = netlist.add_gate(CELLS["FA"], [a, b, carry])
        sums.append(s)
    return sums, carry


def vector_add(
    netlist: Netlist,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    carry_in: int = CONST0,
) -> List[int]:
    """Add two bit vectors of possibly different widths.

    The shorter vector is zero-extended; the result carries one extra bit.
    """
    width = max(len(a_bits), len(b_bits))
    a_ext = list(a_bits) + [CONST0] * (width - len(a_bits))
    b_ext = list(b_bits) + [CONST0] * (width - len(b_bits))
    sums, carry = ripple_add(netlist, a_ext, b_ext, carry_in)
    return sums + [carry]


def invert_bits(netlist: Netlist, bits: Sequence[int]) -> List[int]:
    """Bitwise inversion; constants are folded immediately."""
    out: List[int] = []
    for bit in bits:
        if bit == CONST0:
            out.append(CONST1)
        elif bit == CONST1:
            out.append(CONST0)
        else:
            (inv,) = netlist.add_gate(CELLS["INV"], [bit])
            out.append(inv)
    return out


def borrow_chain(
    netlist: Netlist,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    borrow_in: int = CONST0,
) -> int:
    """Ripple only the borrow of ``a - b`` and return the borrow-out.

    ``borrow_out = MAJ(~a, b, borrow_in)`` per position.
    """
    borrow = borrow_in
    for a, b in zip(a_bits, b_bits):
        not_a = invert_bits(netlist, [a])[0]
        (borrow,) = netlist.add_gate(CELLS["MAJ3"], [not_a, b, borrow])
    return borrow


def ripple_sub(
    netlist: Netlist,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    borrow_in: int = CONST0,
) -> Tuple[List[int], int]:
    """Ripple-borrow subtraction ``a - b``; returns (diff_bits, borrow_out)."""
    if len(a_bits) != len(b_bits):
        raise ValueError("ripple_sub needs equal-width vectors")
    diffs: List[int] = []
    borrow = borrow_in
    for a, b in zip(a_bits, b_bits):
        (d,) = netlist.add_gate(CELLS["XOR3"], [a, b, borrow])
        not_a = invert_bits(netlist, [a])[0]
        (borrow,) = netlist.add_gate(CELLS["MAJ3"], [not_a, b, borrow])
        diffs.append(d)
    return diffs, borrow
