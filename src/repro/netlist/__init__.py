"""Gate-level netlist substrate.

This package stands in for the structural-Verilog view of each library
component.  Circuit families build real gate netlists (AND/OR/XOR/FA/HA...)
so that the synthesis substitute (:mod:`repro.synthesis`) can reproduce the
paper's key effect: constant and dead-logic propagation across component
boundaries makes the true accelerator area smaller than the sum of component
areas.
"""

from repro.netlist.cells import CELLS, CellType, macro_cell
from repro.netlist.netlist import CONST0, CONST1, Gate, Netlist
from repro.netlist.builders import build_netlist
from repro.netlist.simulate import (
    pack_bits,
    simulate,
    simulate_packed,
    unpack_bits,
)
from repro.netlist.verilog import to_verilog

__all__ = [
    "to_verilog",
    "CELLS",
    "CellType",
    "macro_cell",
    "CONST0",
    "CONST1",
    "Gate",
    "Netlist",
    "build_netlist",
    "pack_bits",
    "simulate",
    "simulate_packed",
    "unpack_bits",
]
