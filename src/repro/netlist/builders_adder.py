"""Structural netlist builders for the adder and subtractor families.

Every builder returns a :class:`~repro.netlist.netlist.Netlist` with input
vectors ``a`` and ``b`` (operand width, LSB first) and output vector ``y``
(result width).  Subtractor outputs are the ``n+1``-bit two's-complement
encoding of ``a - b``.

Builders are intentionally naive — redundant MAJ3 cells with constant
carries and the like are left in; the synthesis substitute's constant
propagation cleans them up, exactly as a logic synthesiser would.
"""

from __future__ import annotations

from typing import List

from repro.circuits.adders import (
    AlmostCorrectAdder,
    LowerOrAdder,
    QuAdAdder,
    TruncatedAdder,
)
from repro.circuits.base import ExactAdder, ExactSubtractor
from repro.circuits.subtractors import BlockSubtractor, TruncatedSubtractor
from repro.netlist.cells import CELLS
from repro.netlist.netlist import CONST0, CONST1, Netlist
from repro.netlist.vector_ops import (
    borrow_chain,
    carry_chain,
    invert_bits,
    ripple_add,
    ripple_sub,
)


def build_exact_adder(circuit: ExactAdder) -> Netlist:
    """Plain ripple-carry adder: ``n`` FA cells."""
    n = circuit.width
    nl = Netlist(circuit.name)
    a = nl.add_input("a", n)
    b = nl.add_input("b", n)
    sums, carry = ripple_add(nl, a, b)
    nl.add_output("y", sums + [carry])
    return nl


def build_truncated_adder(circuit: TruncatedAdder) -> Netlist:
    """Truncated adder: upper RCA only; low result bits are fill wiring."""
    n, t = circuit.width, circuit.trunc_bits
    nl = Netlist(circuit.name)
    a = nl.add_input("a", n)
    b = nl.add_input("b", n)
    low: List[int] = []
    for i in range(t):
        if circuit.fill == "zero":
            low.append(CONST0)
        elif circuit.fill == "half":
            low.append(CONST1 if i == t - 1 else CONST0)
        else:  # copy operand a
            low.append(a[i])
    sums, carry = ripple_add(nl, a[t:], b[t:])
    nl.add_output("y", low + sums + [carry])
    return nl


def build_lower_or_adder(circuit: LowerOrAdder) -> Netlist:
    """LOA: OR cells for the low part, AND carry generator, upper RCA."""
    n, l = circuit.width, circuit.or_bits
    nl = Netlist(circuit.name)
    a = nl.add_input("a", n)
    b = nl.add_input("b", n)
    low: List[int] = []
    for i in range(l):
        (o,) = nl.add_gate(CELLS["OR2"], [a[i], b[i]])
        low.append(o)
    carry_in = CONST0
    if l > 0:
        (carry_in,) = nl.add_gate(CELLS["AND2"], [a[l - 1], b[l - 1]])
    sums, carry = ripple_add(nl, a[l:], b[l:], carry_in)
    nl.add_output("y", low + sums + [carry])
    return nl


def build_almost_correct_adder(circuit: AlmostCorrectAdder) -> Netlist:
    """ACA: per output bit, an independent windowed carry chain."""
    n, w = circuit.width, circuit.window
    nl = Netlist(circuit.name)
    a = nl.add_input("a", n)
    b = nl.add_input("b", n)
    bits: List[int] = []
    for i in range(n + 1):
        start = max(0, i - w)
        carry = carry_chain(nl, a[start:i], b[start:i])
        if i == n:
            bits.append(carry)
        else:
            (s,) = nl.add_gate(CELLS["XOR3"], [a[i], b[i], carry])
            bits.append(s)
    nl.add_output("y", bits)
    return nl


def build_quad_adder(circuit: QuAdAdder) -> Netlist:
    """QuAd/GeAr block adder: MAJ3 prediction chains + per-block RCAs."""
    n = circuit.width
    nl = Netlist(circuit.name)
    a = nl.add_input("a", n)
    b = nl.add_input("b", n)
    bits: List[int] = [CONST0] * (n + 1)
    offset = 0
    for k, (length, pred) in enumerate(
        zip(circuit.blocks, circuit.predictions)
    ):
        start = offset - pred
        carry = carry_chain(nl, a[start:offset], b[start:offset])
        sums, carry_out = ripple_add(
            nl, a[offset : offset + length], b[offset : offset + length], carry
        )
        bits[offset : offset + length] = sums
        if k == len(circuit.blocks) - 1:
            bits[n] = carry_out
        offset += length
    nl.add_output("y", bits)
    return nl


def build_exact_subtractor(circuit: ExactSubtractor) -> Netlist:
    """Two's-complement subtractor: invert ``b``, add with carry-in one."""
    n = circuit.width
    nl = Netlist(circuit.name)
    a = nl.add_input("a", n)
    b = nl.add_input("b", n)
    b_ext = list(b) + [CONST0]
    a_ext = list(a) + [CONST0]
    b_inv = invert_bits(nl, b_ext)
    sums, _ = ripple_add(nl, a_ext, b_inv, CONST1)
    nl.add_output("y", sums)
    return nl


def build_truncated_subtractor(circuit: TruncatedSubtractor) -> Netlist:
    """Truncated subtractor: upper two's-complement core, fill wiring below."""
    n, t = circuit.width, circuit.trunc_bits
    nl = Netlist(circuit.name)
    a = nl.add_input("a", n)
    b = nl.add_input("b", n)
    low = [a[i] if circuit.fill == "copy" else CONST0 for i in range(t)]
    a_ext = list(a[t:]) + [CONST0]
    b_inv = invert_bits(nl, list(b[t:]) + [CONST0])
    sums, _ = ripple_add(nl, a_ext, b_inv, CONST1)
    nl.add_output("y", low + sums)
    return nl


def build_block_subtractor(circuit: BlockSubtractor) -> Netlist:
    """Block subtractor with MAJ3 borrow-prediction chains per block."""
    n = circuit.width
    nl = Netlist(circuit.name)
    a = nl.add_input("a", n)
    b = nl.add_input("b", n)
    bits: List[int] = [CONST0] * (n + 1)
    offset = 0
    for k, (length, pred) in enumerate(
        zip(circuit.blocks, circuit.predictions)
    ):
        start = offset - pred
        borrow = borrow_chain(nl, a[start:offset], b[start:offset])
        diffs, borrow_out = ripple_sub(
            nl,
            a[offset : offset + length],
            b[offset : offset + length],
            borrow,
        )
        bits[offset : offset + length] = diffs
        if k == len(circuit.blocks) - 1:
            bits[n] = borrow_out
        offset += length
    nl.add_output("y", bits)
    return nl
