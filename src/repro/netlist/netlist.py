"""Netlist data structure.

A netlist is a DAG of gates connected by integer-numbered nets.  Net 0 is
constant zero and net 1 constant one.  Ports are named bit vectors (LSB
first).  The structure is deliberately simple — plain dicts and lists — so
the synthesis passes stay fast enough to run inside design-space
exploration loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.cells import CELLS, CellType

CONST0 = 0
CONST1 = 1


@dataclass
class Gate:
    """One cell instance: its type and the nets on its pins."""

    cell: CellType
    inputs: Tuple[int, ...]
    outputs: Tuple[int, ...]


class Netlist:
    """Mutable gate-level netlist with named vector ports."""

    def __init__(self, name: str = "netlist"):
        self.name = name
        self._next_net = 2  # 0 and 1 are the constant nets
        self.gates: List[Optional[Gate]] = []
        self.inputs: Dict[str, List[int]] = {}
        self.outputs: Dict[str, List[int]] = {}

    # -- construction -----------------------------------------------------

    def new_net(self) -> int:
        """Allocate and return a fresh net id."""
        net = self._next_net
        self._next_net += 1
        return net

    def new_nets(self, count: int) -> List[int]:
        """Allocate ``count`` fresh nets."""
        return [self.new_net() for _ in range(count)]

    @property
    def net_count(self) -> int:
        """Total number of allocated nets, including the two constants."""
        return self._next_net

    def add_input(self, name: str, width: int) -> List[int]:
        """Declare a primary input vector and return its nets (LSB first)."""
        if name in self.inputs:
            raise NetlistError(f"duplicate input port {name!r}")
        nets = self.new_nets(width)
        self.inputs[name] = nets
        return nets

    def add_output(self, name: str, nets: Sequence[int]) -> None:
        """Declare a primary output vector driven by ``nets`` (LSB first)."""
        if name in self.outputs:
            raise NetlistError(f"duplicate output port {name!r}")
        self.outputs[name] = [int(n) for n in nets]

    def add_gate(
        self,
        cell: CellType,
        inputs: Sequence[int],
        outputs: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Instantiate ``cell``; allocate output nets unless provided."""
        if isinstance(cell, str):
            cell = CELLS[cell]
        if len(inputs) != cell.num_inputs:
            raise NetlistError(
                f"{cell.name} needs {cell.num_inputs} inputs, got {len(inputs)}"
            )
        if outputs is None:
            outputs = self.new_nets(cell.num_outputs)
        if len(outputs) != cell.num_outputs:
            raise NetlistError(
                f"{cell.name} drives {cell.num_outputs} outputs, "
                f"got {len(outputs)}"
            )
        self.gates.append(Gate(cell, tuple(inputs), tuple(outputs)))
        return list(outputs)

    def copy(self) -> "Netlist":
        """Structural copy sharing only the immutable cell types.

        Gates are re-instantiated so in-place optimisation of the copy
        (or the original) cannot leak into the other.
        """
        clone = Netlist(self.name)
        clone._next_net = self._next_net
        clone.gates = [
            Gate(g.cell, tuple(g.inputs), tuple(g.outputs))
            if g is not None
            else None
            for g in self.gates
        ]
        clone.inputs = {k: list(v) for k, v in self.inputs.items()}
        clone.outputs = {k: list(v) for k, v in self.outputs.items()}
        return clone

    # -- queries ------------------------------------------------------------

    def live_gates(self) -> Iterable[Gate]:
        """Iterate over gates that have not been removed by optimisation."""
        return (g for g in self.gates if g is not None)

    def gate_count(self) -> int:
        """Number of live gates."""
        return sum(1 for _ in self.live_gates())

    def area(self) -> float:
        """Total cell area of live gates (um^2)."""
        return sum(g.cell.area for g in self.live_gates())

    def power(self) -> float:
        """Total nominal power of live gates (uW)."""
        return sum(g.cell.power for g in self.live_gates())

    def cell_histogram(self) -> Dict[str, int]:
        """Live-gate count per cell type."""
        hist: Dict[str, int] = {}
        for gate in self.live_gates():
            hist[gate.cell.name] = hist.get(gate.cell.name, 0) + 1
        return hist

    def topological_order(self) -> List[int]:
        """Indices of live gates in topological order.

        Raises :class:`NetlistError` when the netlist has a combinational
        cycle.
        """
        driver: Dict[int, int] = {}
        for idx, gate in enumerate(self.gates):
            if gate is None:
                continue
            for net in gate.outputs:
                if net in driver:
                    raise NetlistError(f"net {net} has multiple drivers")
                driver[net] = idx

        order: List[int] = []
        state: Dict[int, int] = {}  # 0 = visiting, 1 = done

        for start, gate in enumerate(self.gates):
            if gate is None or start in state:
                continue
            stack = [(start, 0)]
            while stack:
                idx, pin = stack.pop()
                if pin == 0:
                    if state.get(idx) == 1:
                        continue
                    if state.get(idx) == 0:
                        raise NetlistError("combinational cycle detected")
                    state[idx] = 0
                    stack.append((idx, 1))
                    for net in self.gates[idx].inputs:
                        dep = driver.get(net)
                        if dep is not None and state.get(dep) != 1:
                            if state.get(dep) == 0:
                                raise NetlistError(
                                    "combinational cycle detected"
                                )
                            stack.append((dep, 0))
                else:
                    state[idx] = 1
                    order.append(idx)
        return order

    def validate(self) -> None:
        """Check structural sanity: single drivers, no cycles, driven nets."""
        self.topological_order()  # raises on cycles / multiple drivers
        driven = {CONST0, CONST1}
        for nets in self.inputs.values():
            driven.update(nets)
        for gate in self.live_gates():
            driven.update(gate.outputs)
        for gate in self.live_gates():
            for net in gate.inputs:
                if net not in driven:
                    raise NetlistError(f"gate input net {net} has no driver")
        for name, nets in self.outputs.items():
            for net in nets:
                if net not in driven:
                    raise NetlistError(
                        f"output {name!r} bit net {net} has no driver"
                    )

    # -- composition --------------------------------------------------------

    def instantiate(
        self, other: "Netlist", port_map: Dict[str, Sequence[int]]
    ) -> Dict[str, List[int]]:
        """Copy ``other`` into this netlist.

        ``port_map`` maps every input port of ``other`` to nets of this
        netlist (same width).  Returns a map from ``other``'s output port
        names to the newly created nets in this netlist.
        """
        remap: Dict[int, int] = {CONST0: CONST0, CONST1: CONST1}
        for name, nets in other.inputs.items():
            if name not in port_map:
                raise NetlistError(f"input port {name!r} not connected")
            bound = port_map[name]
            if len(bound) != len(nets):
                raise NetlistError(
                    f"port {name!r} width mismatch: "
                    f"{len(nets)} vs {len(bound)}"
                )
            for inner, outer in zip(nets, bound):
                remap[inner] = int(outer)

        def mapped(net: int) -> int:
            if net not in remap:
                remap[net] = self.new_net()
            return remap[net]

        for gate in other.live_gates():
            self.add_gate(
                gate.cell,
                [mapped(n) for n in gate.inputs],
                [mapped(n) for n in gate.outputs],
            )
        return {
            name: [mapped(n) for n in nets]
            for name, nets in other.outputs.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Netlist {self.name}: {self.gate_count()} gates, "
            f"{len(self.inputs)} in, {len(self.outputs)} out>"
        )
