"""Structural Verilog export.

The paper describes accelerators in Verilog HDL for synthesis; this
module closes the loop by emitting synthesisable structural Verilog for
any netlist in the substrate — component netlists and composed
accelerators alike.  Primitive cells map to Verilog operators via
``assign`` statements; macro cells are emitted as black-box instances
with a module stub so downstream tools see consistent interfaces.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.errors import NetlistError
from repro.netlist.netlist import CONST0, CONST1, Gate, Netlist

_EXPRESSIONS = {
    "INV": "~{0}",
    "BUF": "{0}",
    "AND2": "{0} & {1}",
    "NAND2": "~({0} & {1})",
    "OR2": "{0} | {1}",
    "NOR2": "~({0} | {1})",
    "XOR2": "{0} ^ {1}",
    "XNOR2": "~({0} ^ {1})",
    "MUX2": "{2} ? {1} : {0}",
    "MAJ3": "({0} & {1}) | ({0} & {2}) | ({1} & {2})",
    "XOR3": "{0} ^ {1} ^ {2}",
}

_MULTI_OUT = {
    "HA": ("{0} ^ {1}", "{0} & {1}"),
    "FA": (
        "{0} ^ {1} ^ {2}",
        "({0} & {1}) | ({0} & {2}) | ({1} & {2})",
    ),
}


def _sanitize(name: str) -> str:
    """Make an arbitrary netlist name a legal Verilog identifier."""
    clean = re.sub(r"[^A-Za-z0-9_]", "_", name)
    if not clean or not (clean[0].isalpha() or clean[0] == "_"):
        clean = "m_" + clean
    return clean


def to_verilog(netlist: Netlist, module_name: str = "") -> str:
    """Render ``netlist`` as a structural Verilog module.

    Vector ports use ``[width-1:0]`` declarations with LSB-first bit
    order preserved.  Macro cells become instantiations of stub modules
    declared after the main module.
    """
    netlist.validate()
    module = _sanitize(module_name or netlist.name)

    def net_name(net: int) -> str:
        if net == CONST0:
            return "1'b0"
        if net == CONST1:
            return "1'b1"
        return f"n{net}"

    ports: List[str] = []
    decls: List[str] = []
    body: List[str] = []

    for name, nets in netlist.inputs.items():
        ports.append(_sanitize(name))
        decls.append(
            f"  input  [{len(nets) - 1}:0] {_sanitize(name)};"
        )
        for position, net in enumerate(nets):
            body.append(
                f"  assign {net_name(net)} = "
                f"{_sanitize(name)}[{position}];"
            )
    for name, nets in netlist.outputs.items():
        ports.append(_sanitize(name))
        decls.append(
            f"  output [{len(nets) - 1}:0] {_sanitize(name)};"
        )

    wire_nets = sorted(
        {
            net
            for gate in netlist.live_gates()
            for net in (*gate.inputs, *gate.outputs)
            if net not in (CONST0, CONST1)
        }
        | {
            net
            for nets in netlist.inputs.values()
            for net in nets
        }
    )
    if wire_nets:
        decls.append(
            "  wire " + ", ".join(net_name(n) for n in wire_nets) + ";"
        )

    macro_stubs: Dict[str, Gate] = {}
    for index, gate in enumerate(netlist.live_gates()):
        cell = gate.cell
        ins = [net_name(n) for n in gate.inputs]
        outs = [net_name(n) for n in gate.outputs]
        if cell.name in _EXPRESSIONS:
            body.append(
                f"  assign {outs[0]} = "
                f"{_EXPRESSIONS[cell.name].format(*ins)};"
            )
        elif cell.name in _MULTI_OUT:
            for expr, out in zip(_MULTI_OUT[cell.name], outs):
                body.append(f"  assign {out} = {expr.format(*ins)};")
        elif cell.is_macro:
            stub = _sanitize(cell.name)
            macro_stubs[stub] = gate
            pins = ", ".join(
                f".i{k}({v})" for k, v in enumerate(ins)
            ) + ", " + ", ".join(
                f".o{k}({v})" for k, v in enumerate(outs)
            )
            body.append(f"  {stub} u_{stub}_{index} ({pins});")
        else:  # pragma: no cover - all cells are covered above
            raise NetlistError(f"cannot export cell {cell.name!r}")

    for name, nets in netlist.outputs.items():
        for position, net in enumerate(nets):
            body.append(
                f"  assign {_sanitize(name)}[{position}] = "
                f"{net_name(net)};"
            )

    lines = [f"module {module} ({', '.join(ports)});"]
    lines.extend(decls)
    lines.extend(body)
    lines.append("endmodule")

    for stub, gate in macro_stubs.items():
        pin_list = [f"i{k}" for k in range(len(gate.inputs))] + [
            f"o{k}" for k in range(len(gate.outputs))
        ]
        lines.append("")
        lines.append(
            f"module {stub} ({', '.join(pin_list)});  // black box"
        )
        for k in range(len(gate.inputs)):
            lines.append(f"  input i{k};")
        for k in range(len(gate.outputs)):
            lines.append(f"  output o{k};")
        lines.append("endmodule")

    return "\n".join(lines) + "\n"
