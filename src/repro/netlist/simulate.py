"""Vectorised logic simulation of netlists.

Used by the test-suite to verify that every structural builder implements
exactly the same function as its behavioural circuit model, and by the
synthesis substitute to cross-check optimisations.

Two execution modes share one entry point:

* **word mode** — every net holds an int64 array of 0/1 values, one
  element per test vector.  Simple, handles scalars, and the historical
  behaviour.
* **packed mode** — every net holds a uint64 array of *bit planes*: 64
  test vectors per machine word, gate operations as single bitwise ops
  over the packed planes.  For wide input batches this cuts both memory
  traffic and instruction count by ~64x per gate.

``simulate(..., packed=None)`` (the default) picks packed mode
automatically for large vector inputs; both modes return bit-identical
results, which the test-suite asserts on random netlists.

Macro cells cannot be simulated (they are opaque); netlists containing
them are only characterised structurally.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.errors import NetlistError
from repro.netlist.netlist import CONST0, CONST1, Netlist

IntArray = Union[int, np.ndarray]

#: Vector count from which ``packed=None`` auto-selects packed mode.
#: Below this the packing overhead dominates the per-gate savings.
PACKED_THRESHOLD = 128


def _eval_gate(cell_name: str, ins):
    if cell_name == "INV":
        return (1 - ins[0],)
    if cell_name == "BUF":
        return (ins[0],)
    if cell_name == "NAND2":
        return (1 - (ins[0] & ins[1]),)
    if cell_name == "NOR2":
        return (1 - (ins[0] | ins[1]),)
    if cell_name == "AND2":
        return (ins[0] & ins[1],)
    if cell_name == "OR2":
        return (ins[0] | ins[1],)
    if cell_name == "XOR2":
        return (ins[0] ^ ins[1],)
    if cell_name == "XNOR2":
        return (1 - (ins[0] ^ ins[1]),)
    if cell_name == "MUX2":
        d0, d1, sel = ins
        return ((d0 & (1 - sel)) | (d1 & sel),)
    if cell_name == "MAJ3":
        a, b, c = ins
        return ((a & b) | (a & c) | (b & c),)
    if cell_name == "XOR3":
        return (ins[0] ^ ins[1] ^ ins[2],)
    if cell_name == "HA":
        a, b = ins
        return (a ^ b, a & b)
    if cell_name == "FA":
        a, b, c = ins
        return (a ^ b ^ c, (a & b) | (a & c) | (b & c))
    raise NetlistError(f"cannot simulate cell {cell_name!r}")


def _eval_gate_packed(cell_name: str, ins):
    """Gate semantics on packed uint64 bit planes.

    Inversion is a full-word complement; lanes beyond the vector count
    carry garbage, which is harmless — unpacking never reads them.
    """
    if cell_name == "INV":
        return (~ins[0],)
    if cell_name == "BUF":
        return (ins[0],)
    if cell_name == "NAND2":
        return (~(ins[0] & ins[1]),)
    if cell_name == "NOR2":
        return (~(ins[0] | ins[1]),)
    if cell_name == "AND2":
        return (ins[0] & ins[1],)
    if cell_name == "OR2":
        return (ins[0] | ins[1],)
    if cell_name == "XOR2":
        return (ins[0] ^ ins[1],)
    if cell_name == "XNOR2":
        return (~(ins[0] ^ ins[1]),)
    if cell_name == "MUX2":
        d0, d1, sel = ins
        return ((d0 & ~sel) | (d1 & sel),)
    if cell_name == "MAJ3":
        a, b, c = ins
        return ((a & b) | (a & c) | (b & c),)
    if cell_name == "XOR3":
        return (ins[0] ^ ins[1] ^ ins[2],)
    if cell_name == "HA":
        a, b = ins
        return (a ^ b, a & b)
    if cell_name == "FA":
        a, b, c = ins
        return (a ^ b ^ c, (a & b) | (a & c) | (b & c))
    raise NetlistError(f"cannot simulate cell {cell_name!r}")


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a (n,) 0/1 vector into a (ceil(n/64),) uint64 plane.

    Lane ``i`` lands in bit ``i % 64`` of word ``i // 64``; tail lanes
    of the last word are zero-filled.  :func:`unpack_bits` inverts this
    exactly.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    packed = np.packbits(bits, bitorder="little")
    pad = (-packed.size) % 8
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(pad, dtype=np.uint8)]
        )
    return packed.view("<u8")


def unpack_bits(words: np.ndarray, count: int) -> np.ndarray:
    """The first ``count`` lanes of a packed plane, as int64 0/1."""
    words = np.ascontiguousarray(words).astype("<u8", copy=False)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return bits[:count].astype(np.int64)


def _check_inputs(netlist: Netlist, input_values: Dict) -> None:
    missing = set(netlist.inputs) - set(input_values)
    if missing:
        raise NetlistError(f"missing values for inputs: {sorted(missing)}")


def _simulate_words(
    netlist: Netlist, input_values: Dict[str, IntArray]
) -> Dict[str, np.ndarray]:
    shape = None
    for value in input_values.values():
        arr = np.asarray(value)
        if arr.ndim > 0:
            shape = arr.shape
            break
    zeros = np.zeros(shape, dtype=np.int64) if shape else 0
    ones = zeros + 1

    values: Dict[int, IntArray] = {CONST0: zeros, CONST1: ones}
    for name, nets in netlist.inputs.items():
        word = np.asarray(input_values[name], dtype=np.int64)
        for position, net in enumerate(nets):
            values[net] = (word >> position) & 1

    for idx in netlist.topological_order():
        gate = netlist.gates[idx]
        if gate.cell.is_macro:
            raise NetlistError(
                f"macro cell {gate.cell.name!r} is not simulatable"
            )
        ins = []
        for net in gate.inputs:
            if net not in values:
                raise NetlistError(f"net {net} read before being driven")
            ins.append(values[net])
        outs = _eval_gate(gate.cell.name, ins)
        for net, val in zip(gate.outputs, outs):
            values[net] = val

    results: Dict[str, np.ndarray] = {}
    for name, nets in netlist.outputs.items():
        word = zeros
        for position, net in enumerate(nets):
            if net not in values:
                raise NetlistError(
                    f"output {name!r} bit {position} (net {net}) undriven"
                )
            word = word + (values[net].astype(np.int64) << position
                           if isinstance(values[net], np.ndarray)
                           else values[net] << position)
        results[name] = word
    return results


def _simulate_packed(
    netlist: Netlist,
    input_values: Dict[str, IntArray],
    count: int,
) -> Dict[str, np.ndarray]:
    n_words = (count + 63) // 64
    zeros = np.zeros(n_words, dtype=np.uint64)
    ones = np.full(n_words, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)

    values: Dict[int, np.ndarray] = {CONST0: zeros, CONST1: ones}
    for name, nets in netlist.inputs.items():
        word = np.broadcast_to(
            np.asarray(input_values[name], dtype=np.int64), (count,)
        )
        for position, net in enumerate(nets):
            values[net] = pack_bits((word >> position) & 1)

    for idx in netlist.topological_order():
        gate = netlist.gates[idx]
        if gate.cell.is_macro:
            raise NetlistError(
                f"macro cell {gate.cell.name!r} is not simulatable"
            )
        ins = []
        for net in gate.inputs:
            if net not in values:
                raise NetlistError(f"net {net} read before being driven")
            ins.append(values[net])
        outs = _eval_gate_packed(gate.cell.name, ins)
        for net, val in zip(gate.outputs, outs):
            values[net] = val

    results: Dict[str, np.ndarray] = {}
    for name, nets in netlist.outputs.items():
        word = np.zeros(count, dtype=np.int64)
        for position, net in enumerate(nets):
            if net not in values:
                raise NetlistError(
                    f"output {name!r} bit {position} (net {net}) undriven"
                )
            word |= unpack_bits(values[net], count) << position
        results[name] = word
    return results


def simulate(
    netlist: Netlist,
    input_values: Dict[str, IntArray],
    packed: Optional[bool] = None,
) -> Dict[str, np.ndarray]:
    """Simulate ``netlist`` on vector input values.

    ``input_values`` maps every input port to an integer (or int array);
    the returned dict maps every output port to the simulated integer
    values (int64 arrays, LSB-first port bit order folded back into
    ints).  ``packed`` selects the execution mode: ``True`` forces
    bit-packed planes (64 vectors per uint64 word), ``False`` forces
    word mode, and ``None`` (default) packs automatically for vector
    batches of at least :data:`PACKED_THRESHOLD` inputs.  Both modes
    return identical results.
    """
    _check_inputs(netlist, input_values)
    count = None
    for value in input_values.values():
        arr = np.asarray(value)
        if arr.ndim == 1:
            count = arr.shape[0]
            break
    if packed is None:
        packed = count is not None and count >= PACKED_THRESHOLD
    if not packed or count is None:
        return _simulate_words(netlist, input_values)
    return _simulate_packed(netlist, input_values, count)


def simulate_packed(
    netlist: Netlist, input_values: Dict[str, IntArray]
) -> Dict[str, np.ndarray]:
    """:func:`simulate` with bit-packed execution forced on."""
    return simulate(netlist, input_values, packed=True)
