"""Vectorised logic simulation of netlists.

Used by the test-suite to verify that every structural builder implements
exactly the same function as its behavioural circuit model, and by the
synthesis substitute to cross-check optimisations.

Macro cells cannot be simulated (they are opaque); netlists containing them
are only characterised structurally.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from repro.errors import NetlistError
from repro.netlist.netlist import CONST0, CONST1, Netlist

IntArray = Union[int, np.ndarray]


def _eval_gate(cell_name: str, ins):
    if cell_name == "INV":
        return (1 - ins[0],)
    if cell_name == "BUF":
        return (ins[0],)
    if cell_name == "NAND2":
        return (1 - (ins[0] & ins[1]),)
    if cell_name == "NOR2":
        return (1 - (ins[0] | ins[1]),)
    if cell_name == "AND2":
        return (ins[0] & ins[1],)
    if cell_name == "OR2":
        return (ins[0] | ins[1],)
    if cell_name == "XOR2":
        return (ins[0] ^ ins[1],)
    if cell_name == "XNOR2":
        return (1 - (ins[0] ^ ins[1]),)
    if cell_name == "MUX2":
        d0, d1, sel = ins
        return ((d0 & (1 - sel)) | (d1 & sel),)
    if cell_name == "MAJ3":
        a, b, c = ins
        return ((a & b) | (a & c) | (b & c),)
    if cell_name == "XOR3":
        return (ins[0] ^ ins[1] ^ ins[2],)
    if cell_name == "HA":
        a, b = ins
        return (a ^ b, a & b)
    if cell_name == "FA":
        a, b, c = ins
        return (a ^ b ^ c, (a & b) | (a & c) | (b & c))
    raise NetlistError(f"cannot simulate cell {cell_name!r}")


def simulate(
    netlist: Netlist, input_values: Dict[str, IntArray]
) -> Dict[str, np.ndarray]:
    """Simulate ``netlist`` on vector input values.

    ``input_values`` maps every input port to an integer (or int array);
    the returned dict maps every output port to the simulated integer
    values (int64 arrays, LSB-first port bit order folded back into ints).
    """
    missing = set(netlist.inputs) - set(input_values)
    if missing:
        raise NetlistError(f"missing values for inputs: {sorted(missing)}")

    shape = None
    for value in input_values.values():
        arr = np.asarray(value)
        if arr.ndim > 0:
            shape = arr.shape
            break
    zeros = np.zeros(shape, dtype=np.int64) if shape else 0
    ones = zeros + 1

    values: Dict[int, IntArray] = {CONST0: zeros, CONST1: ones}
    for name, nets in netlist.inputs.items():
        word = np.asarray(input_values[name], dtype=np.int64)
        for position, net in enumerate(nets):
            values[net] = (word >> position) & 1

    for idx in netlist.topological_order():
        gate = netlist.gates[idx]
        if gate.cell.is_macro:
            raise NetlistError(
                f"macro cell {gate.cell.name!r} is not simulatable"
            )
        ins = []
        for net in gate.inputs:
            if net not in values:
                raise NetlistError(f"net {net} read before being driven")
            ins.append(values[net])
        outs = _eval_gate(gate.cell.name, ins)
        for net, val in zip(gate.outputs, outs):
            values[net] = val

    results: Dict[str, np.ndarray] = {}
    for name, nets in netlist.outputs.items():
        word = zeros
        for position, net in enumerate(nets):
            if net not in values:
                raise NetlistError(
                    f"output {name!r} bit {position} (net {net}) undriven"
                )
            word = word + (values[net].astype(np.int64) << position
                           if isinstance(values[net], np.ndarray)
                           else values[net] << position)
        results[name] = word
    return results
