"""Structural netlist builders for the multiplier families.

The masked array multiplier (covering the exact, broken-array, perforated
and truncated variants) and the recursive 2x2 multiplier produce full gate
netlists.  The logarithmic families (Mitchell, DRUM) are emitted as
parametric macro cells: their datapaths (leading-one detectors and barrel
shifters) are modelled by calibrated area/delay/power formulas instead of
individual gates, which keeps them opaque to intra-component constant
propagation (documented substitution; see DESIGN.md).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.circuits.multipliers import (
    DrumMultiplier,
    MaskedMultiplier,
    MitchellMultiplier,
    RecursiveApproxMultiplier,
)
from repro.netlist.cells import CELLS, macro_cell
from repro.netlist.netlist import CONST0, Netlist
from repro.netlist.vector_ops import vector_add


def _compress_columns(
    nl: Netlist, columns: List[List[int]], width: int
) -> List[int]:
    """Reduce partial-product columns to one bit each (FA/HA tree + CPA)."""
    # Carry-save reduction to height <= 2, LSB column first so that carries
    # always land in a column that has not been processed yet.
    for k in range(width):
        while len(columns[k]) > 2:
            x, y, z = columns[k][:3]
            del columns[k][:3]
            s, c = nl.add_gate(CELLS["FA"], [x, y, z])
            columns[k].append(s)
            if k + 1 < width:
                columns[k + 1].append(c)
    # Final carry-propagate chain.
    result: List[int] = []
    carry = CONST0
    for k in range(width):
        items = [n for n in columns[k] if n != CONST0]
        if carry != CONST0:
            items.append(carry)
        if not items:
            result.append(CONST0)
            carry = CONST0
        elif len(items) == 1:
            result.append(items[0])
            carry = CONST0
        elif len(items) == 2:
            s, carry = nl.add_gate(CELLS["HA"], items)
            result.append(s)
        else:
            s, carry = nl.add_gate(CELLS["FA"], items)
            result.append(s)
    return result


def build_masked_multiplier(circuit: MaskedMultiplier) -> Netlist:
    """AND-array partial products + carry-save reduction + final CPA."""
    n = circuit.width
    nl = Netlist(circuit.name)
    a = nl.add_input("a", n)
    b = nl.add_input("b", n)
    width = 2 * n
    columns: List[List[int]] = [[] for _ in range(width)]
    for i, mask in enumerate(circuit.row_masks):
        for j in range(n):
            if (mask >> j) & 1:
                (pp,) = nl.add_gate(CELLS["AND2"], [a[j], b[i]])
                columns[i + j].append(pp)
    nl.add_output("y", _compress_columns(nl, columns, width))
    return nl


def _leaf_2x2(
    nl: Netlist, a0: int, a1: int, b0: int, b1: int, approximate: bool
) -> List[int]:
    """2x2 multiplier block: 4 bits exact, 3 bits (Kulkarni) approximate."""
    (p00,) = nl.add_gate(CELLS["AND2"], [a0, b0])
    (p10,) = nl.add_gate(CELLS["AND2"], [a1, b0])
    (p01,) = nl.add_gate(CELLS["AND2"], [a0, b1])
    (p11,) = nl.add_gate(CELLS["AND2"], [a1, b1])
    if approximate:
        (mid,) = nl.add_gate(CELLS["OR2"], [p10, p01])
        return [p00, mid, p11, CONST0]
    (mid,) = nl.add_gate(CELLS["XOR2"], [p10, p01])
    (both,) = nl.add_gate(CELLS["AND2"], [p10, p01])
    (hi,) = nl.add_gate(CELLS["XOR2"], [p11, both])
    (top,) = nl.add_gate(CELLS["AND2"], [p11, both])
    return [p00, mid, hi, top]


def build_recursive_multiplier(circuit: RecursiveApproxMultiplier) -> Netlist:
    """Recursive 2x2 composition with ripple adder combination stages."""
    n = circuit.width
    nl = Netlist(circuit.name)
    a = nl.add_input("a", n)
    b = nl.add_input("b", n)
    half_leaves = n // 2

    def multiply(a_bits: List[int], b_bits: List[int], a_base: int,
                 b_base: int) -> List[int]:
        k = len(a_bits)
        if k == 2:
            leaf_index = (b_base // 2) * half_leaves + (a_base // 2)
            return _leaf_2x2(
                nl,
                a_bits[0],
                a_bits[1],
                b_bits[0],
                b_bits[1],
                leaf_index in circuit.approx_leaves,
            )
        h = k // 2
        ll = multiply(a_bits[:h], b_bits[:h], a_base, b_base)
        hl = multiply(a_bits[h:], b_bits[:h], a_base + h, b_base)
        lh = multiply(a_bits[:h], b_bits[h:], a_base, b_base + h)
        hh = multiply(a_bits[h:], b_bits[h:], a_base + h, b_base + h)
        mid = vector_add(nl, hl, lh)  # 2h + 1 bits
        # ll occupies bits [0, 2h), hh bits [2h, 4h): concatenation is free.
        base = ll + hh
        shifted_mid = [CONST0] * h + mid
        return vector_add(nl, base, shifted_mid)[: 2 * k]

    nl.add_output("y", multiply(list(a), list(b), 0, 0))
    return nl


def _lod_cost(n: int) -> Dict[str, float]:
    """Leading-one detector + priority encoder cost model (~3 gates/bit)."""
    return {
        "area": 3.0 * n * 1.06,
        "delay": 0.020 * n,
        "power": 3.0 * n * 0.5,
    }


def _barrel_cost(width: int, stages: int) -> Dict[str, float]:
    """Barrel shifter: ``stages`` levels of MUX2 across ``width`` bits."""
    mux = CELLS["MUX2"]
    return {
        "area": stages * width * mux.area,
        "delay": stages * mux.delay,
        "power": stages * width * mux.power,
    }


def build_mitchell_multiplier(circuit: MitchellMultiplier) -> Netlist:
    """Mitchell log multiplier as a calibrated macro cell.

    Structure: two LODs, two log-stage encoders (barrel shifters producing
    ``frac_bits`` mantissas), a ``(log2 n + frac_bits)``-bit adder and an
    antilog barrel shifter over the ``2n``-bit result.
    """
    n, f = circuit.width, circuit.frac_bits
    log_n = max(1, math.ceil(math.log2(n)))
    parts = [
        _lod_cost(n),
        _lod_cost(n),
        _barrel_cost(f, log_n),
        _barrel_cost(f, log_n),
        {
            "area": (log_n + f) * CELLS["FA"].area,
            "delay": (log_n + f) * CELLS["FA"].delay,
            "power": (log_n + f) * CELLS["FA"].power,
        },
        _barrel_cost(2 * n, log_n + 1),
    ]
    area = sum(p["area"] for p in parts)
    delay = max(p["delay"] for p in parts[:4]) + parts[4]["delay"] + parts[5][
        "delay"
    ]
    power = sum(p["power"] for p in parts)

    nl = Netlist(circuit.name)
    a = nl.add_input("a", n)
    b = nl.add_input("b", n)
    cell = macro_cell(
        f"MITCHELL_{n}_{f}", area, delay, power, 2 * n, 2 * n
    )
    outs = nl.add_gate(cell, list(a) + list(b))
    nl.add_output("y", outs)
    return nl


def build_drum_multiplier(circuit: DrumMultiplier) -> Netlist:
    """DRUM as a macro: two LODs, two steering shifters, a k x k exact
    multiplier core and the output shifter."""
    n, k = circuit.width, circuit.k
    log_n = max(1, math.ceil(math.log2(n)))
    # k x k exact array multiplier core cost.
    core_ands = k * k
    core_fas = max(0, k * k - 2 * k)
    core = {
        "area": core_ands * CELLS["AND2"].area + core_fas * CELLS["FA"].area,
        "delay": 0.02 + (2 * k) * CELLS["FA"].delay,
        "power": core_ands * CELLS["AND2"].power
        + core_fas * CELLS["FA"].power,
    }
    parts = [
        _lod_cost(n),
        _lod_cost(n),
        _barrel_cost(k, log_n),
        _barrel_cost(k, log_n),
        core,
        _barrel_cost(2 * n, log_n + 1),
    ]
    area = sum(p["area"] for p in parts)
    delay = parts[0]["delay"] + parts[2]["delay"] + core["delay"] + parts[5][
        "delay"
    ]
    power = sum(p["power"] for p in parts)

    nl = Netlist(circuit.name)
    a = nl.add_input("a", n)
    b = nl.add_input("b", n)
    cell = macro_cell(f"DRUM_{n}_{k}", area, delay, power, 2 * n, 2 * n)
    outs = nl.add_gate(cell, list(a) + list(b))
    nl.add_output("y", outs)
    return nl
