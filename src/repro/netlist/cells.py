"""Standard-cell library for the synthesis substitute.

Numbers are representative of a 45 nm commercial library (the paper targets
Synopsys Design Compiler at 45 nm): areas in um^2, pin-to-pin delays in ns,
and a nominal per-gate power in uW that folds leakage together with dynamic
power at a fixed switching activity.  Absolute values only set the scale —
the methodology consumes relative costs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CellType:
    """One standard cell: geometry, timing, power and pin counts."""

    name: str
    area: float
    delay: float
    power: float
    num_inputs: int
    num_outputs: int
    is_macro: bool = False

    def __post_init__(self):
        if self.area < 0 or self.delay < 0 or self.power < 0:
            raise ValueError("cell costs must be non-negative")
        if self.num_inputs < 1 or self.num_outputs < 1:
            raise ValueError("cells need at least one input and output")


def _cell(name, area, delay, power, n_in, n_out=1) -> CellType:
    return CellType(name, area, delay, power, n_in, n_out)


#: Primitive cells available to the builders.  FA/HA are the usual
#: full/half-adder standard cells (outputs: sum, carry).  MAJ3 is the
#: carry-only majority cell used by speculative adders; XOR3 is the
#: three-input sum cell.
CELLS = {
    c.name: c
    for c in [
        _cell("INV", 0.53, 0.010, 0.3, 1),
        _cell("BUF", 0.80, 0.015, 0.4, 1),
        _cell("NAND2", 0.80, 0.014, 0.4, 2),
        _cell("NOR2", 0.80, 0.016, 0.4, 2),
        _cell("AND2", 1.06, 0.020, 0.5, 2),
        _cell("OR2", 1.06, 0.020, 0.5, 2),
        _cell("XOR2", 1.60, 0.030, 0.8, 2),
        _cell("XNOR2", 1.60, 0.030, 0.8, 2),
        _cell("MUX2", 1.86, 0.030, 0.9, 3),  # inputs: (d0, d1, sel)
        _cell("MAJ3", 2.13, 0.033, 1.0, 3),
        _cell("XOR3", 3.19, 0.055, 1.5, 3),
        CellType("HA", 2.66, 0.045, 1.2, 2, 2),  # outputs: (sum, carry)
        CellType("FA", 4.79, 0.075, 2.2, 3, 2),  # inputs: (a, b, cin)
    ]
}


def macro_cell(
    name: str,
    area: float,
    delay: float,
    power: float,
    num_inputs: int,
    num_outputs: int,
) -> CellType:
    """Create a black-box macro cell (e.g. a logarithmic-multiplier core).

    Macros are opaque to constant propagation; dead-logic elimination drops
    them only when every output is unused.
    """
    return CellType(
        name, area, delay, power, num_inputs, num_outputs, is_macro=True
    )
